/**
 * @file
 * StateJournal — the append-only, CRC-framed record of protection-
 * state mutations that makes checker death survivable.
 *
 * The checker process can die at any instruction, including halfway
 * through an append. The journal's framing is designed around that
 * single fact: every record is [u32 payloadLen][u32 crc32(payload)]
 * [payload], so a reader walking the bytes can always distinguish
 * "the writer finished this record" from "the crash tore it". The
 * reader NEVER aborts on damage — it returns every record up to the
 * first torn or corrupt frame and reports what stopped it, because a
 * recovery path that can itself crash on its input is not a recovery
 * path.
 *
 * What gets journaled is exactly the volatile state a crash destroys
 * and a warm restart must reproduce:
 *  - CreditCommit: verdict-cache promotions into the ITC-CFG's
 *    runtime-credit bitmap (with their TNT sequences — replay must
 *    reproduce the original commit calls bit for bit);
 *  - VerdictCommitted / VerdictDelivered: the two halves of deferred
 *    enforcement, keyed (cr3, seq), so a crash between them neither
 *    loses a kill nor delivers it twice;
 *  - EndpointSeq: the per-process checked high-water mark;
 *  - ModuleEvent: load/unload/rebase, so replay never restores
 *    credit onto a range that was retired during or before the gap.
 */

#ifndef FLOWGUARD_RECOVERY_JOURNAL_HH
#define FLOWGUARD_RECOVERY_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/profile_io.hh"
#include "decode/fast_decoder.hh"

namespace flowguard::recovery {

/** The protection-state mutations worth surviving a crash. */
enum class RecordType : uint8_t {
    CreditCommit = 1,
    VerdictCommitted = 2,
    VerdictDelivered = 3,
    EndpointSeq = 4,
    ModuleEvent = 5,
};

const char *recordTypeName(RecordType type);

/** Module lifecycle classes a replay must respect. */
enum class ModuleEventKind : uint8_t {
    Load = 1,
    Unload = 2,
    Rebase = 3,
};

/**
 * One journal record. A tagged union in the simulator's usual flat
 * style: `type` says which fields are meaningful.
 */
struct JournalRecord
{
    RecordType type = RecordType::EndpointSeq;
    uint64_t cr3 = 0;

    /** CreditCommit: the promoted transitions, TNT included. */
    std::vector<decode::TipTransition> transitions;

    /** VerdictCommitted / VerdictDelivered / EndpointSeq. */
    uint64_t seq = 0;

    /** VerdictCommitted payload (enough to rebuild the report). */
    uint8_t verdictKind = 0;
    int64_t syscall = 0;
    uint64_t from = 0;
    uint64_t to = 0;
    std::string reason;

    /** ModuleEvent payload: [begin, end) retired or moved. */
    ModuleEventKind moduleKind = ModuleEventKind::Load;
    uint64_t begin = 0;
    uint64_t end = 0;
    uint64_t newBase = 0;
};

/**
 * The append-only journal. Bytes are the durable medium — the
 * supervisor survives the checker, and fault injection tears the
 * byte vector exactly where a real crash would tear the file.
 */
class StateJournal
{
  public:
    /** Appends one CRC-framed record. */
    void append(const JournalRecord &record);

    const std::vector<uint8_t> &bytes() const { return _bytes; }

    /** Mutable view for fault injection (torn-tail crashes). */
    std::vector<uint8_t> &mutableBytes() { return _bytes; }

    /** Drops everything (after a compaction made it redundant). */
    void clear();

    /** Truncates to `size` bytes — discards a torn tail so later
     *  appends never follow garbage. */
    void truncateTo(size_t size);

    /** Records appended since construction or the last clear(). */
    size_t recordCount() const { return _records; }

  private:
    std::vector<uint8_t> _bytes;
    size_t _records = 0;
};

/** What a tolerant journal read produced. */
struct JournalReadResult
{
    std::vector<JournalRecord> records;
    /** Ok, Truncated (torn frame) or BadChecksum (corrupt frame) —
     *  the same recoverable-status vocabulary profile loading uses. */
    ProfileLoadResult::Status status = ProfileLoadResult::Status::Ok;
    /** Length of the valid prefix (offset of the first bad frame). */
    size_t bytesConsumed = 0;
    /** Bytes after the valid prefix that were not replayed. */
    size_t bytesDropped = 0;
};

/**
 * Reads every intact record, stopping at the first torn or corrupt
 * frame. Never throws, never aborts, never returns a record from
 * beyond the damage — replaying past a torn point would apply
 * mutations the pre-crash checker may never have made.
 */
JournalReadResult readJournal(const uint8_t *data, size_t size);

JournalReadResult readJournal(const std::vector<uint8_t> &bytes);

} // namespace flowguard::recovery

#endif // FLOWGUARD_RECOVERY_JOURNAL_HH
