/**
 * @file
 * GapLedger — the no-silent-gap cycle accounting.
 *
 * Every cycle a protected process retires belongs to exactly one of
 * four classes: checked (a verdict existed for its window), deferred
 * (verdict late but guaranteed), lossy (judged over damaged trace)
 * or gap (no checker existed). The ledger enforces that by
 * construction: each window attribution charges the cycles since the
 * previous attribution to a single class, so the identity
 *
 *   checked + deferred + lossy + gap == cycles retired
 *
 * cannot drift — it can only fail if a window was never attributed
 * at all, which is precisely the silent gap the subsystem exists to
 * rule out. Tests assert identityHolds() after every scenario,
 * crashed or not.
 */

#ifndef FLOWGUARD_RECOVERY_GAP_LEDGER_HH
#define FLOWGUARD_RECOVERY_GAP_LEDGER_HH

#include <cstdint>
#include <map>

#include "runtime/service.hh"

namespace flowguard::recovery {

class GapLedger
{
  public:
    struct Buckets
    {
        uint64_t checked = 0;
        uint64_t deferred = 0;
        uint64_t lossy = 0;
        uint64_t gap = 0;

        uint64_t
        total() const
        {
            return checked + deferred + lossy + gap;
        }
    };

    /** Starts accounting `cr3` at `inst_now` (usually 0, before the
     *  process runs). Idempotent. */
    void begin(uint64_t cr3, uint64_t inst_now);

    /** Charges the cycles since the last attribution to `cls`. */
    void attribute(uint64_t cr3, uint64_t inst_now,
                   runtime::ProtectionWindowClass cls);

    /** Buckets for one process (nullptr when never begun). */
    const Buckets *bucketsFor(uint64_t cr3) const;

    /** Fleet-wide sums. */
    Buckets totals() const;

    /**
     * The accounting identity for one process: every cycle from
     * begin() to `final_inst` is attributed, and to exactly one
     * class. False when cycles ran after the last attribution (a
     * window nobody accounted for) or the process was never begun.
     */
    bool identityHolds(uint64_t cr3, uint64_t final_inst) const;

  private:
    struct Entry
    {
        uint64_t firstInst = 0;
        uint64_t lastInst = 0;
        Buckets buckets;
    };

    std::map<uint64_t, Entry> _entries;
};

} // namespace flowguard::recovery

#endif // FLOWGUARD_RECOVERY_GAP_LEDGER_HH
