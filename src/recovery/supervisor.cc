#include "recovery/supervisor.hh"

#include <string>

#include "support/fsio.hh"

namespace flowguard::recovery {

using runtime::ProtectionWindowClass;
using runtime::ViolationReport;

const char *
recoveryPolicyName(RecoveryPolicy policy)
{
    switch (policy) {
      case RecoveryPolicy::FailClosed: return "fail-closed";
      case RecoveryPolicy::ResyncAndAudit: return "resync-and-audit";
      case RecoveryPolicy::ColdRestart: return "cold-restart";
    }
    return "?";
}

RecoverySupervisor::RecoverySupervisor(RecoveryConfig config)
    : _config(config)
{}

void
RecoverySupervisor::attach(runtime::ProtectionService &service)
{
    _service = &service;
    service.setRecoveryHooks(this);
}

void
RecoverySupervisor::addProcess(uint64_t cr3,
                               runtime::Monitor &monitor,
                               analysis::ItcCfg &itc, cpu::Cpu &cpu,
                               const dynamic::DynamicGuard *dyn)
{
    ProcessRefs refs;
    refs.monitor = &monitor;
    refs.itc = &itc;
    refs.cpu = &cpu;
    refs.dyn = dyn;
    _procs[cr3] = refs;
    _ledger.begin(cr3, cpu.instCount());
    monitor.setCommitObserver(
        [this, cr3](
            const std::vector<decode::TipTransition> &transitions) {
            JournalRecord record;
            record.type = RecordType::CreditCommit;
            record.cr3 = cr3;
            record.transitions = transitions;
            journalAppend(record);
        });
}

void
RecoverySupervisor::advance(uint64_t now)
{
    if (_state == State::Dead || !_faults)
        return;
    const uint64_t crash_at = _faults->monitorCrashCycle();
    if (crash_at != 0 && !_crashFired && now >= crash_at) {
        _crashFired = true;
        crash(now, /*hang=*/false);
        return;
    }
    const uint64_t hang_at = _faults->monitorHangCycle();
    if (hang_at != 0 && !_hangFired && now >= hang_at) {
        _hangFired = true;
        crash(now, /*hang=*/true);
    }
}

void
RecoverySupervisor::crash(uint64_t now, bool hang)
{
    if (hang)
        ++_stats.hangs;
    else
        ++_stats.crashes;
    if (_telemetry) {
        // The checker just died; the per-process rings are the black
        // box. Dump them now — through the sink, so the trace shows
        // the final approach, and into crashDumps() for triage —
        // before anything post-crash pushes the tail events out.
        _telemetry->instant(telemetry::EventKind::CheckerCrash,
                            /*cr3=*/0, /*seq=*/0,
                            /*a=*/hang ? 1 : 0, /*b=*/now);
        _crashDumps.clear();
        for (const auto &entry : _procs)
            _crashDumps[entry.first] =
                _telemetry->dumpRecorder(entry.first);
    }
    _state = State::Dead;
    _downAt = now;
    _detectAt = now + _config.heartbeatIntervalCycles *
                      _config.missedHeartbeatsToDeclareDead;
    // A frozen fleet retires nothing, so on the virtual clock a
    // FailClosed restart has zero width: everything between detection
    // and checker-up happens "outside time" for the processes.
    _restartAt = _config.policy == RecoveryPolicy::FailClosed
        ? _detectAt
        : _detectAt + _config.restartLatencyCycles;
    _stats.heartbeatsMissed += _config.missedHeartbeatsToDeclareDead;

    // A crash (not a hang) can tear the append that was in flight.
    // Hangs leave the journal intact — the process is wedged, not
    // mid-write.
    if (!hang && _faults && _faults->tornJournalOnCrash())
        _stats.tornTailBytes +=
            _faults->tearJournalTail(_journal.mutableBytes());

    // Everything volatile dies with the checker process. Crash and
    // hang are handled uniformly: a hung checker is killed by the
    // watchdog, so its state is just as gone.
    if (_service) {
        _service->crashWipe();
        _service->detachAllForCrash();
    }
    for (auto &entry : _procs) {
        ProcessRefs &proc = entry.second;
        proc.itc->clearRuntimeCredits();
        proc.gapStartInst = proc.cpu->instCount();
        proc.gapStartSeq = 0;
        proc.inGap = true;
    }
}

void
RecoverySupervisor::restart(uint64_t now)
{
    ++_stats.restarts;
    if (_telemetry)
        _telemetry->instant(telemetry::EventKind::CheckerRestart,
                            /*cr3=*/0, /*seq=*/0,
                            /*a=*/now - _downAt, /*b=*/now);
    _stats.downtimeCycles += now - _downAt;
    if (_config.policy == RecoveryPolicy::FailClosed)
        _stats.frozenCycles += _config.restartLatencyCycles;

    // Warm restart is fold(snapshot + journal tail) read back. A
    // damaged snapshot degrades to the empty state — the journal tail
    // still holds whatever was appended since the last compaction.
    RecoveredState state = loadSnapshot(_snapshot).state;
    const JournalReadResult tail = readJournal(_journal.bytes());
    for (const auto &record : tail.records) {
        ++_stats.replayedRecords;
        if (record.type == RecordType::CreditCommit)
            ++_stats.replayedCreditCommits;
        state.apply(record);
    }
    _stats.dedupSuppressed += state.dedupDropped;
    if (tail.status != ProfileLoadResult::Status::Ok) {
        // Appending after a torn frame would bury good records behind
        // garbage forever; cut the journal at the last intact record.
        _stats.tornTailBytes += tail.bytesDropped;
        _journal.truncateTo(tail.bytesConsumed);
    }

    _state = State::Alive;
    if (_service)
        _service->attachAll();

    for (const auto &entry : state.processes) {
        auto it = _procs.find(entry.first);
        if (it == _procs.end())
            continue;
        std::vector<decode::TipTransition> credits =
            entry.second.credits;
        if (_config.policy == RecoveryPolicy::ColdRestart) {
            _stats.creditDroppedCold += credits.size();
            continue;
        }
        // Reconcile against the kernel's surviving module map: the
        // journal's fold already pruned credit behind every unload it
        // recorded, but a torn tail can be missing the final unload.
        // The dynamic guard's map is the other side of the process
        // boundary and cannot lie about what is currently retired.
        if (const dynamic::DynamicGuard *dyn = it->second.dyn) {
            const auto retired = dyn->retiredRanges();
            if (!retired.empty()) {
                const size_t before = credits.size();
                std::erase_if(
                    credits,
                    [&retired](const decode::TipTransition &t) {
                        for (const auto &range : retired)
                            if ((t.from >= range.first &&
                                 t.from < range.second) ||
                                (t.to >= range.first &&
                                 t.to < range.second))
                                return true;
                        return false;
                    });
                _stats.replayReconciledDrops +=
                    before - credits.size();
            }
        }
        // Replay reproduces the original commitCache() calls; the
        // observer guard keeps the replay from re-journaling records
        // the journal is the source of.
        _replaying = true;
        it->second.monitor->replayCommit(credits);
        _replaying = false;
        _stats.replayedTransitions += credits.size();
    }

    for (const auto &verdict : state.undeliveredVerdicts) {
        ViolationReport report;
        report.kind =
            static_cast<ViolationReport::Kind>(verdict.verdictKind);
        report.cr3 = verdict.cr3;
        report.seq = verdict.seq;
        report.syscall = verdict.syscall;
        report.from = verdict.from;
        report.to = verdict.to;
        report.reason = verdict.reason;
        if (_service)
            _service->requeueKill(std::move(report));
        ++_stats.requeuedVerdicts;
    }

    for (auto &entry : _procs) {
        ProcessRefs &proc = entry.second;
        if (_service) {
            const auto outcome = _service->resyncCheck(entry.first);
            if (outcome.checked)
                ++_stats.catchUpChecks;
            if (outcome.violation) {
                ++_stats.catchUpViolations;
                _reports.push_back(outcome.report);
            }
        }
        if (_config.policy != RecoveryPolicy::FailClosed) {
            proc.monitor->forceSlowNext();
            ++_stats.forcedSlowWindows;
        }
        if (proc.inGap &&
            proc.cpu->instCount() == proc.gapStartInst) {
            // The process never ran while the checker was down: no
            // cycle went unchecked, so there is no gap to report.
            proc.inGap = false;
        }
        if (proc.inGap) {
            // Close the gap at the restart boundary: cycles retired
            // between the crash and this instant belong to the Gap
            // bucket, no matter when the next endpoint fires.
            _ledger.attribute(entry.first, proc.cpu->instCount(),
                              ProtectionWindowClass::Gap);
            ViolationReport gap;
            gap.kind = ViolationReport::Kind::ProtectionGap;
            gap.cr3 = entry.first;
            gap.seq = proc.gapStartSeq;
            gap.from = proc.gapStartInst;
            gap.to = proc.cpu->instCount();
            gap.reason = std::string("checker down ") +
                std::to_string(now - _downAt) + " cycles (policy " +
                recoveryPolicyName(_config.policy) + ", detect at " +
                std::to_string(_detectAt) + ", up at " +
                std::to_string(now) + ")";
            if (_telemetry)
                gap.flight = _telemetry->snapshotFlight(entry.first);
            _gapWidths.add(
                static_cast<double>(gap.to - gap.from));
            _reports.push_back(std::move(gap));
            proc.inGap = false;
        }
    }

    // The fold we just performed IS the new snapshot; persisting it
    // now means the next crash replays from here.
    _snapshot = serializeSnapshot(state);
    _journal.clear();
    ++_stats.compactions;
    _stats.snapshotBytes = _snapshot.size();
    _stats.journalBytes = 0;
    if (!_config.snapshotPath.empty())
        writeFileAtomic(_config.snapshotPath, _snapshot.data(),
                        _snapshot.size());
}

RecoverySupervisor::Gate
RecoverySupervisor::gateEndpoint(uint64_t cr3, uint64_t seq,
                                 uint64_t now)
{
    advance(now);
    if (_state == State::Dead && now >= _restartAt)
        restart(now);
    if (_state == State::Alive)
        return Gate::Proceed;
    ++_stats.gapEndpoints;
    auto it = _procs.find(cr3);
    if (it != _procs.end() && it->second.inGap &&
        it->second.gapStartSeq == 0)
        it->second.gapStartSeq = seq;
    return Gate::SkipUnchecked;
}

RecoverySupervisor::Gate
RecoverySupervisor::gateDrain(uint64_t now)
{
    advance(now);
    if (_state == State::Dead && now >= _restartAt)
        restart(now);
    if (_state == State::Alive)
        return Gate::Proceed;
    // The run is ending with the checker still down: the gap never
    // closes. Report it as reaching end-of-run so the accounting
    // still places every cycle.
    emitGapReports(now);
    return Gate::SkipUnchecked;
}

void
RecoverySupervisor::emitGapReports(uint64_t now)
{
    for (auto &entry : _procs) {
        ProcessRefs &proc = entry.second;
        if (!proc.inGap)
            continue;
        if (proc.cpu->instCount() == proc.gapStartInst) {
            // Idle through the whole outage: nothing unchecked.
            proc.inGap = false;
            continue;
        }
        ViolationReport gap;
        gap.kind = ViolationReport::Kind::ProtectionGap;
        gap.cr3 = entry.first;
        gap.seq = proc.gapStartSeq;
        gap.from = proc.gapStartInst;
        gap.to = proc.cpu->instCount();
        gap.reason = std::string("checker still down at drain (") +
            std::to_string(now - _downAt) + " cycles, policy " +
            recoveryPolicyName(_config.policy) + ")";
        if (_telemetry)
            gap.flight = _telemetry->snapshotFlight(entry.first);
        _gapWidths.add(static_cast<double>(gap.to - gap.from));
        _reports.push_back(std::move(gap));
        proc.inGap = false;
    }
}

void
RecoverySupervisor::noteWindow(uint64_t cr3, uint64_t seq,
                               ProtectionWindowClass cls)
{
    auto it = _procs.find(cr3);
    if (it == _procs.end())
        return;
    _ledger.attribute(cr3, it->second.cpu->instCount(), cls);
    if (cls == ProtectionWindowClass::Gap)
        return;     // a dead checker journals nothing
    JournalRecord record;
    record.type = RecordType::EndpointSeq;
    record.cr3 = cr3;
    record.seq = seq;
    journalAppend(record);
}

void
RecoverySupervisor::noteVerdictCommitted(const ViolationReport &report)
{
    JournalRecord record;
    record.type = RecordType::VerdictCommitted;
    record.cr3 = report.cr3;
    record.seq = report.seq;
    record.verdictKind = static_cast<uint8_t>(report.kind);
    record.syscall = report.syscall;
    record.from = report.from;
    record.to = report.to;
    record.reason = report.reason;
    journalAppend(record);
}

void
RecoverySupervisor::noteVerdictDelivered(uint64_t cr3, uint64_t seq)
{
    JournalRecord record;
    record.type = RecordType::VerdictDelivered;
    record.cr3 = cr3;
    record.seq = seq;
    journalAppend(record);
}

void
RecoverySupervisor::onCodeEvent(const cpu::CodeEvent &event)
{
    JournalRecord record;
    record.type = RecordType::ModuleEvent;
    record.cr3 = event.cr3;
    switch (event.kind) {
      case cpu::CodeEventKind::ModuleLoad:
      case cpu::CodeEventKind::JitRegionMap:
        record.moduleKind = ModuleEventKind::Load;
        break;
      case cpu::CodeEventKind::ModuleUnload:
      case cpu::CodeEventKind::JitRegionUnmap:
        record.moduleKind = ModuleEventKind::Unload;
        break;
      case cpu::CodeEventKind::Rebase:
        record.moduleKind = ModuleEventKind::Rebase;
        break;
    }
    record.begin = event.base;
    record.end = event.end;
    record.newBase = event.newBase;
    journalAppend(record);
}

void
RecoverySupervisor::journalAppend(const JournalRecord &record)
{
    if (_replaying)
        return;
    _journal.append(record);
    ++_stats.journalAppends;
    if (_config.compactEveryRecords != 0 &&
        _journal.recordCount() >= _config.compactEveryRecords)
        compactNow();
}

void
RecoverySupervisor::compactNow()
{
    RecoveredState state = loadSnapshot(_snapshot).state;
    const JournalReadResult tail = readJournal(_journal.bytes());
    for (const auto &record : tail.records)
        state.apply(record);
    _stats.journalBytes = _journal.bytes().size();
    _snapshot = serializeSnapshot(state);
    _journal.clear();
    ++_stats.compactions;
    _stats.snapshotBytes = _snapshot.size();
    if (!_config.snapshotPath.empty())
        writeFileAtomic(_config.snapshotPath, _snapshot.data(),
                        _snapshot.size());
}

} // namespace flowguard::recovery
