#include "recovery/journal.hh"

#include <cstring>

#include "support/crc32.hh"

namespace flowguard::recovery {

namespace {

// A frame's payload is bounded in practice by one CreditCommit worth
// of transitions; anything claiming more than this is a corrupt
// length field, not a real record.
constexpr size_t max_payload = 1u << 24;

void
put8(std::vector<uint8_t> &out, uint8_t value)
{
    out.push_back(value);
}

void
put32(std::vector<uint8_t> &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
put64(std::vector<uint8_t> &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    put64(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounded byte reader mirroring wire::Reader for raw buffers. */
struct ByteReader
{
    const uint8_t *data;
    size_t size;
    size_t offset = 0;
    bool truncated = false;

    uint8_t
    u8()
    {
        if (offset + 1 > size) {
            truncated = true;
            return 0;
        }
        return data[offset++];
    }

    uint32_t
    u32()
    {
        if (offset + 4 > size) {
            truncated = true;
            return 0;
        }
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(data[offset++]) << (8 * i);
        return value;
    }

    uint64_t
    u64()
    {
        if (offset + 8 > size) {
            truncated = true;
            return 0;
        }
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<uint64_t>(data[offset++]) << (8 * i);
        return value;
    }

    std::string
    str()
    {
        const uint64_t len = u64();
        if (truncated || len > size - offset) {
            truncated = true;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data + offset),
                      len);
        offset += len;
        return s;
    }
};

std::vector<uint8_t>
encodePayload(const JournalRecord &record)
{
    std::vector<uint8_t> out;
    put8(out, static_cast<uint8_t>(record.type));
    put64(out, record.cr3);
    switch (record.type) {
      case RecordType::CreditCommit:
        put64(out, record.transitions.size());
        for (const auto &transition : record.transitions) {
            put64(out, transition.from);
            put64(out, transition.to);
            put64(out, transition.tnt.size());
            out.insert(out.end(), transition.tnt.begin(),
                       transition.tnt.end());
        }
        break;
      case RecordType::VerdictCommitted:
        put64(out, record.seq);
        put8(out, record.verdictKind);
        put64(out, static_cast<uint64_t>(record.syscall));
        put64(out, record.from);
        put64(out, record.to);
        putString(out, record.reason);
        break;
      case RecordType::VerdictDelivered:
      case RecordType::EndpointSeq:
        put64(out, record.seq);
        break;
      case RecordType::ModuleEvent:
        put8(out, static_cast<uint8_t>(record.moduleKind));
        put64(out, record.begin);
        put64(out, record.end);
        put64(out, record.newBase);
        break;
    }
    return out;
}

/** Decodes one payload; false when malformed (truncated content or
 *  unknown type — both impossible for frames whose CRC matched a
 *  well-formed writer, so either means corruption). */
bool
decodePayload(const uint8_t *data, size_t size, JournalRecord &out)
{
    ByteReader in{data, size};
    const uint8_t type = in.u8();
    if (type < static_cast<uint8_t>(RecordType::CreditCommit) ||
        type > static_cast<uint8_t>(RecordType::ModuleEvent))
        return false;
    out.type = static_cast<RecordType>(type);
    out.cr3 = in.u64();
    switch (out.type) {
      case RecordType::CreditCommit: {
        const uint64_t count = in.u64();
        if (in.truncated || count > size)
            return false;
        out.transitions.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
            decode::TipTransition transition;
            transition.from = in.u64();
            transition.to = in.u64();
            const uint64_t tnt_len = in.u64();
            if (in.truncated || tnt_len > size - in.offset)
                return false;
            transition.tnt.assign(in.data + in.offset,
                                  in.data + in.offset + tnt_len);
            in.offset += tnt_len;
            out.transitions.push_back(std::move(transition));
        }
        break;
      }
      case RecordType::VerdictCommitted:
        out.seq = in.u64();
        out.verdictKind = in.u8();
        out.syscall = static_cast<int64_t>(in.u64());
        out.from = in.u64();
        out.to = in.u64();
        out.reason = in.str();
        break;
      case RecordType::VerdictDelivered:
      case RecordType::EndpointSeq:
        out.seq = in.u64();
        break;
      case RecordType::ModuleEvent: {
        const uint8_t kind = in.u8();
        if (kind < static_cast<uint8_t>(ModuleEventKind::Load) ||
            kind > static_cast<uint8_t>(ModuleEventKind::Rebase))
            return false;
        out.moduleKind = static_cast<ModuleEventKind>(kind);
        out.begin = in.u64();
        out.end = in.u64();
        out.newBase = in.u64();
        break;
      }
    }
    return !in.truncated && in.offset == size;
}

} // namespace

const char *
recordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::CreditCommit: return "credit-commit";
      case RecordType::VerdictCommitted: return "verdict-committed";
      case RecordType::VerdictDelivered: return "verdict-delivered";
      case RecordType::EndpointSeq: return "endpoint-seq";
      case RecordType::ModuleEvent: return "module-event";
    }
    return "?";
}

void
StateJournal::append(const JournalRecord &record)
{
    const std::vector<uint8_t> payload = encodePayload(record);
    put32(_bytes, static_cast<uint32_t>(payload.size()));
    put32(_bytes, crc32(payload.data(), payload.size()));
    _bytes.insert(_bytes.end(), payload.begin(), payload.end());
    ++_records;
}

void
StateJournal::clear()
{
    _bytes.clear();
    _records = 0;
}

void
StateJournal::truncateTo(size_t size)
{
    if (size < _bytes.size())
        _bytes.resize(size);
}

JournalReadResult
readJournal(const uint8_t *data, size_t size)
{
    using Status = ProfileLoadResult::Status;
    JournalReadResult result;
    size_t offset = 0;
    while (offset < size) {
        if (size - offset < 8) {
            // A torn header: the writer died before finishing the
            // frame prefix.
            result.status = Status::Truncated;
            break;
        }
        uint32_t len = 0, crc = 0;
        for (int i = 0; i < 4; ++i)
            len |= static_cast<uint32_t>(data[offset + i]) << (8 * i);
        for (int i = 0; i < 4; ++i)
            crc |= static_cast<uint32_t>(data[offset + 4 + i])
                << (8 * i);
        if (len > max_payload) {
            // No writer produces frames this large; the length field
            // itself is corrupt.
            result.status = Status::BadChecksum;
            break;
        }
        if (len > size - offset - 8) {
            result.status = Status::Truncated;
            break;
        }
        const uint8_t *payload = data + offset + 8;
        if (crc32(payload, len) != crc) {
            result.status = Status::BadChecksum;
            break;
        }
        JournalRecord record;
        if (!decodePayload(payload, len, record)) {
            result.status = Status::BadChecksum;
            break;
        }
        result.records.push_back(std::move(record));
        offset += 8 + len;
        result.bytesConsumed = offset;
    }
    result.bytesDropped = size - result.bytesConsumed;
    return result;
}

JournalReadResult
readJournal(const std::vector<uint8_t> &bytes)
{
    return readJournal(bytes.data(), bytes.size());
}

} // namespace flowguard::recovery
