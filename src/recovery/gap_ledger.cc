#include "recovery/gap_ledger.hh"

namespace flowguard::recovery {

using runtime::ProtectionWindowClass;

void
GapLedger::begin(uint64_t cr3, uint64_t inst_now)
{
    if (_entries.count(cr3))
        return;
    Entry entry;
    entry.firstInst = inst_now;
    entry.lastInst = inst_now;
    _entries[cr3] = entry;
}

void
GapLedger::attribute(uint64_t cr3, uint64_t inst_now,
                     ProtectionWindowClass cls)
{
    auto it = _entries.find(cr3);
    if (it == _entries.end()) {
        begin(cr3, 0);
        it = _entries.find(cr3);
    }
    Entry &entry = it->second;
    if (inst_now < entry.lastInst)
        return;     // never attribute a window twice
    const uint64_t cycles = inst_now - entry.lastInst;
    entry.lastInst = inst_now;
    switch (cls) {
      case ProtectionWindowClass::Checked:
        entry.buckets.checked += cycles;
        break;
      case ProtectionWindowClass::Deferred:
        entry.buckets.deferred += cycles;
        break;
      case ProtectionWindowClass::Lossy:
        entry.buckets.lossy += cycles;
        break;
      case ProtectionWindowClass::Gap:
        entry.buckets.gap += cycles;
        break;
    }
}

const GapLedger::Buckets *
GapLedger::bucketsFor(uint64_t cr3) const
{
    auto it = _entries.find(cr3);
    return it == _entries.end() ? nullptr : &it->second.buckets;
}

GapLedger::Buckets
GapLedger::totals() const
{
    Buckets totals;
    for (const auto &entry : _entries) {
        totals.checked += entry.second.buckets.checked;
        totals.deferred += entry.second.buckets.deferred;
        totals.lossy += entry.second.buckets.lossy;
        totals.gap += entry.second.buckets.gap;
    }
    return totals;
}

bool
GapLedger::identityHolds(uint64_t cr3, uint64_t final_inst) const
{
    auto it = _entries.find(cr3);
    if (it == _entries.end())
        return false;
    const Entry &entry = it->second;
    return entry.lastInst == final_inst &&
        entry.buckets.total() == final_inst - entry.firstInst;
}

} // namespace flowguard::recovery
