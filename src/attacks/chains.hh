/**
 * @file
 * Exploit construction against the vulnerable synthetic server
 * (§7.1.2 "real attacks prevention").
 *
 * All attacks ride the implanted stack overflow in handler 0: payload
 * word 3 overwrites the handler's return address, subsequent words
 * are consumed by the chain. The builders only use knowledge a real
 * adversary has under the §3.3 threat model: the binaries (gadget
 * catalog) and the deterministic stack layout.
 */

#ifndef FLOWGUARD_ATTACKS_CHAINS_HH
#define FLOWGUARD_ATTACKS_CHAINS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attacks/gadgets.hh"
#include "isa/program.hh"

namespace flowguard::attacks {

/** Deterministic addresses of the vulnerable server's stack frame. */
struct VulnLayout
{
    uint64_t stackTop = 0;
    uint64_t requestBufAddr = 0;    ///< main's request buffer
    uint64_t overflowDstAddr = 0;   ///< where payload word 0 lands

    static VulnLayout forServer(const isa::Program &program);
};

/** One ready-to-send malicious request. */
struct AttackInfo
{
    std::string description;
    std::vector<uint8_t> request;
    /** Syscall number at which detection is expected to fire. */
    int64_t expectedEndpoint = 0;
};

/**
 * Traditional ROP: pop-gadget loads (fd=1, buf, len), then the
 * "syscall write; ret" gadget — arbitrary data written to a file
 * descriptor — then a clean exit gadget.
 */
AttackInfo buildRopWriteAttack(const isa::Program &program,
                               const GadgetCatalog &catalog);

/**
 * SROP (Bosman & Bos [36]): one gadget — the sigreturn trampoline —
 * plus a forged sigframe restoring a full register context with
 * pc = write wrapper.
 */
AttackInfo buildSropAttack(const isa::Program &program,
                           const GadgetCatalog &catalog);

/** Return-to-lib: overwrite the return address directly with the
 *  libc write wrapper entry (no gadget chain at all). */
AttackInfo buildRet2LibAttack(const isa::Program &program,
                              const GadgetCatalog &catalog);

/**
 * History-flushing (Carlini & Wagner [35]): `flush_steps`
 * call-preceded gadgets — each a perfectly matched call/return pair
 * that looks innocuous to LBR heuristics — executed after the initial
 * hijack, followed by the ROP write chain. Defeats a 16-deep LBR
 * checker; must not defeat a >= 30-TIP FlowGuard window.
 */
AttackInfo buildHistoryFlushAttack(const isa::Program &program,
                                   const GadgetCatalog &catalog,
                                   size_t flush_steps);

/**
 * Stealth hijack-and-repair: one pop gadget loads attacker registers
 * (the malicious work), then control returns into the server's own
 * response path, so only legitimate TIPs precede the write endpoint.
 * Used for the pkt_count sensitivity study (§7.1.1): a window of 1
 * TIP sees only the legitimate PLT hop and misses the attack; wider
 * windows reach back to the violating gadget entries.
 */
AttackInfo buildStealthRepairAttack(const isa::Program &program,
                                    const GadgetCatalog &catalog);

/**
 * Minimal hijack with perfect stack repair: the overwritten return
 * address points straight at main's response path, whose stack depth
 * matches the smashed slot exactly — so the server keeps serving
 * indefinitely after a single CFG-violating transfer. The purest
 * endpoint-pruning specimen for the PMI experiments.
 */
AttackInfo buildMinimalHijackAttack(const isa::Program &program);

/**
 * COOP/control-jujutsu-style forward-edge attack (§6): the
 * magic-gated debug write primitive in handler 1 corrupts a dispatch
 * table slot to point at `maintenance_mode` — a never-address-taken,
 * disabled administrative function — and a follow-up request invokes
 * it through the normal indirect dispatch. No return address is ever
 * touched and the landing site is a function entry, so a CET-style
 * shadow stack + ENDBRANCH policy passes; FlowGuard flags the TIP
 * because the target is not an IT-BB of the conservative ITC-CFG.
 */
AttackInfo buildCoopAttack(const isa::Program &program);

/**
 * GOT overwrite: the same data-only write primitive redirects the
 * executable's GOT slot for write_buf at `maintenance_mode`, so every
 * subsequent `call write_buf@plt` dispatches into the disabled
 * function instead — and, crucially, the write() syscall that would
 * have been FlowGuard's endpoint never happens again. The attack
 * thereby prunes its own endpoint: the default configuration misses
 * it, the PMI fallback (§7.1.2) catches the PLT jump's anomalous TIP.
 */
AttackInfo buildGotOverwriteAttack(const isa::Program &program);

} // namespace flowguard::attacks

#endif // FLOWGUARD_ATTACKS_CHAINS_HH
