#include "attacks/chains.hh"

#include "cpu/basic_kernel.hh"
#include "isa/syscalls.hh"
#include "support/logging.hh"
#include "workloads/apps.hh"

namespace flowguard::attacks {

using isa::Syscall;

namespace {

/**
 * Builds the malicious request around a chain of stack words:
 * words 0-2 fill the local buffer, word 3 overwrites the return
 * address, the rest feed the chain. A zero terminator stops the
 * vulnerable strcpy after the last word.
 */
std::vector<uint8_t>
requestFromChain(const std::vector<uint64_t> &chain)
{
    std::vector<uint64_t> payload;
    for (size_t i = 0; i < workloads::vuln_buffer_words; ++i)
        payload.push_back(0x4141414141414141ULL);   // filler
    payload.insert(payload.end(), chain.begin(), chain.end());
    payload.push_back(0);                           // terminator
    fg_assert(payload.size() * 8 + 8 <= workloads::request_size,
              "chain does not fit in one request");
    for (size_t i = 0; i + 1 < payload.size(); ++i)
        fg_assert(payload[i] != 0,
                  "zero word would truncate the overflow early");
    // Handler 0 (the vulnerable one), parser state 0.
    return workloads::makeRequest(0, 0, payload);
}

} // namespace

VulnLayout
VulnLayout::forServer(const isa::Program &program)
{
    VulnLayout layout;
    layout.stackTop = program.stackTop();
    // main: sp -= 512 for the request buffer, then one direct call
    // (handle_request) and one indirect call (the handler) each push
    // 8 bytes, then the handler reserves the local buffer.
    layout.requestBufAddr = layout.stackTop - 512;
    layout.overflowDstAddr = layout.stackTop - 512 - 16 -
        8 * workloads::vuln_buffer_words;
    return layout;
}

AttackInfo
buildRopWriteAttack(const isa::Program &program,
                    const GadgetCatalog &catalog)
{
    const VulnLayout layout = VulnLayout::forServer(program);
    const PopGadget *pop = catalog.findPop({0, 1, 2});
    const uint64_t write_gadget =
        catalog.findSyscall(static_cast<int64_t>(Syscall::Write));
    const uint64_t exit_gadget =
        catalog.findSyscall(static_cast<int64_t>(Syscall::Exit));
    fg_assert(pop && write_gadget && exit_gadget,
              "gadget catalog lacks ROP building blocks");

    // Chain: pop registers, invoke write(fd, buf, len), exit.
    std::vector<uint64_t> chain;
    chain.push_back(pop->addr);
    for (uint8_t reg : pop->regs) {
        switch (reg) {
          case 0: chain.push_back(1); break;                 // fd
          case 1: chain.push_back(layout.overflowDstAddr); break;
          case 2: chain.push_back(16); break;                // bytes
          default: chain.push_back(0x42); break;
        }
    }
    chain.push_back(write_gadget);
    chain.push_back(exit_gadget);

    AttackInfo attack;
    attack.description =
        "ROP: pop fd/buf/len, write(), exit() via gadget chain";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

AttackInfo
buildSropAttack(const isa::Program &program,
                const GadgetCatalog &catalog)
{
    const VulnLayout layout = VulnLayout::forServer(program);
    const uint64_t sigreturn_gadget =
        catalog.findSyscall(static_cast<int64_t>(Syscall::Sigreturn));
    const uint64_t write_entry = program.funcAddr("libc", "write_buf");
    const uint64_t exit_gadget =
        catalog.findSyscall(static_cast<int64_t>(Syscall::Exit));
    fg_assert(sigreturn_gadget && exit_gadget,
              "gadget catalog lacks SROP building blocks");

    // Word indices within the payload (copied to overflowDstAddr):
    //   3: sigreturn trampoline (overwrites the return address)
    //   4: sigframe magic
    //   5..20: r0..r15
    //   21: pc
    //   22: continuation word the restored sp points at (exit gadget)
    std::vector<uint64_t> chain;
    chain.push_back(sigreturn_gadget);              // word 3
    chain.push_back(cpu::BasicKernel::sigframe_magic);
    std::vector<uint64_t> regs(16, 0x4242424242424242ULL);
    regs[0] = 1;                                    // fd
    regs[1] = layout.overflowDstAddr;               // buf
    regs[2] = 16;                                   // bytes
    regs[isa::sp_reg] = layout.overflowDstAddr + 8 * 22;
    for (uint64_t value : regs)
        chain.push_back(value);
    chain.push_back(write_entry);                   // pc
    chain.push_back(exit_gadget);                   // word 22

    AttackInfo attack;
    attack.description =
        "SROP: forged sigframe via the sigreturn trampoline";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint =
        static_cast<int64_t>(Syscall::Sigreturn);
    return attack;
}

AttackInfo
buildRet2LibAttack(const isa::Program &program,
                   const GadgetCatalog &catalog)
{
    (void)catalog;
    const uint64_t write_entry = program.funcAddr("libc", "write_buf");
    const uint64_t exit_gadget = program.funcAddr("libc", "sys_exit");

    // Return straight into libc: whatever r0..r2 hold at the time of
    // the hijacked return becomes the write() arguments.
    std::vector<uint64_t> chain{write_entry, exit_gadget};

    AttackInfo attack;
    attack.description = "return-to-lib: ret directly into write_buf";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

namespace {

/** Address of the instruction after main's `call handle_request`. */
uint64_t
findResponseSite(const isa::Program &program)
{
    const uint64_t handle_request =
        program.funcAddr(program.modules()[0].name, "handle_request");
    const isa::LoadedFunction *main_fn =
        program.functionAt(program.entry());
    fg_assert(main_fn, "no main function");
    for (uint32_t i = main_fn->firstInst;
         i < main_fn->firstInst + main_fn->numInsts; ++i) {
        const isa::Instruction &inst = program.inst(i);
        if (inst.op == isa::Opcode::Call &&
            inst.target == handle_request)
            return program.instAddr(i) + isa::instSize(inst.op);
    }
    fg_fatal("no call site of handle_request in main");
}

} // namespace

AttackInfo
buildStealthRepairAttack(const isa::Program &program,
                         const GadgetCatalog &catalog)
{
    const PopGadget *pop = catalog.findPop({0, 1, 2});
    fg_assert(pop, "gadget catalog lacks a pop gadget");

    std::vector<uint64_t> chain;
    chain.push_back(pop->addr);
    for (size_t i = 0; i < pop->regs.size(); ++i)
        chain.push_back(0x4242 + i);            // attacker registers
    chain.push_back(findResponseSite(program)); // repair: resume main

    AttackInfo attack;
    attack.description =
        "stealth hijack-and-repair: pop gadget, then resume the "
        "response path";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

AttackInfo
buildMinimalHijackAttack(const isa::Program &program)
{
    // Word 3 replaces the slot that held the return into pstate; the
    // response path expects exactly this stack depth, so execution
    // re-joins the benign request loop with a balanced stack.
    std::vector<uint64_t> chain{findResponseSite(program)};
    AttackInfo attack;
    attack.description =
        "minimal hijack: one violating return into the response "
        "path, perfect stack repair";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

AttackInfo
buildCoopAttack(const isa::Program &program)
{
    const std::string &exe = program.modules()[0].name;
    const uint64_t stats = program.dataAddr(exe, "stats_array");
    const uint64_t table = program.dataAddr(exe, "handler_table");
    const uint64_t target = program.funcAddr(exe, "maintenance_mode");
    fg_assert(table > stats, "debug write cannot reach the table");

    // Request 1: the debug command overwrites handler_table[2].
    const uint64_t slot_offset = table - stats + 2 * 8;
    auto corrupt = workloads::makeRequest(
        1, 0,
        {static_cast<uint64_t>(workloads::vuln_debug_magic),
         slot_offset, target, 0});

    // Request 2: ordinary traffic for handler 2 dispatches into the
    // corrupted slot.
    auto trigger = workloads::makeRequest(2, 0, {7, 0});

    AttackInfo attack;
    attack.description =
        "COOP-style: data-only dispatch-table corruption, then "
        "invocation of disabled functionality via a legal-looking "
        "indirect call";
    attack.request = corrupt;
    attack.request.insert(attack.request.end(), trigger.begin(),
                          trigger.end());
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

AttackInfo
buildGotOverwriteAttack(const isa::Program &program)
{
    const std::string &exe = program.modules()[0].name;
    const uint64_t stats = program.dataAddr(exe, "stats_array");
    const uint64_t got = program.dataAddr(exe, "got.write_buf");
    const uint64_t target = program.funcAddr(exe, "maintenance_mode");
    fg_assert(got > stats, "debug write cannot reach the GOT");

    auto corrupt = workloads::makeRequest(
        1, 0,
        {static_cast<uint64_t>(workloads::vuln_debug_magic),
         got - stats, target, 0});
    // Any follow-up request routes its response through the
    // corrupted PLT entry.
    auto trigger = workloads::makeRequest(3, 0, {5, 0});

    AttackInfo attack;
    attack.description =
        "GOT overwrite: redirect write_buf@plt to disabled "
        "functionality; suppresses the write endpoint itself";
    attack.request = corrupt;
    attack.request.insert(attack.request.end(), trigger.begin(),
                          trigger.end());
    // No syscall endpoint will fire after the corruption; only the
    // PMI fallback can see it.
    attack.expectedEndpoint = -1;
    return attack;
}

AttackInfo
buildHistoryFlushAttack(const isa::Program &program,
                        const GadgetCatalog &catalog,
                        size_t flush_steps)
{
    fg_assert(!catalog.flushGadgets.empty(),
              "no call-preceded flush gadgets found");

    // Every hop lands on a *call-preceded* address (a legitimate
    // return site whose code quickly returns again), so a kBouncer-
    // style "returns must be call-preceded" heuristic sees nothing
    // wrong at any point. The chain terminates by returning into the
    // server's own response sequence — the instructions right after
    // `call handle_request` in main — which legitimately performs the
    // write() endpoint with attacker-influenced buffer contents.
    //
    // For FlowGuard each hop is still an ITC-CFG violation: a return
    // site of function F is only a valid return target for F's own
    // returns, and these returns come from unrelated frames.
    std::vector<uint64_t> chain;
    for (size_t i = 0; i < flush_steps; ++i) {
        const FlushGadget &flush =
            catalog.flushGadgets[i % catalog.flushGadgets.size()];
        chain.push_back(flush.returnSite);
    }

    // Terminate by returning into main's response sequence.
    chain.push_back(findResponseSite(program));

    AttackInfo attack;
    attack.description =
        "history flushing: " + std::to_string(flush_steps) +
        " call-preceded hops, then return into the response path";
    attack.request = requestFromChain(chain);
    attack.expectedEndpoint = static_cast<int64_t>(Syscall::Write);
    return attack;
}

} // namespace flowguard::attacks
