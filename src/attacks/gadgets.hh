/**
 * @file
 * Gadget discovery — the attacker's static analysis.
 *
 * Scans the program (which the adversary fully knows, per §3.3) for
 * the classic code-reuse building blocks:
 *
 *  - pop chains: "load rX, [sp]; add sp, 8; ... ; ret" runs (register
 *    restores / longjmp epilogues) that let a chain load registers
 *    from attacker-controlled stack words;
 *  - syscall gadgets: "syscall N; ret" bodies of libc wrappers;
 *  - ret-only gadgets;
 *  - call-preceded gadgets: a direct call instruction whose callee
 *    returns quickly — executing from the call produces a perfectly
 *    matched call/return pair, the history-flushing primitive of
 *    Carlini & Wagner [35].
 */

#ifndef FLOWGUARD_ATTACKS_GADGETS_HH
#define FLOWGUARD_ATTACKS_GADGETS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "isa/program.hh"

namespace flowguard::attacks {

/** A pop-chain gadget: pops `regs` in order, then returns. */
struct PopGadget
{
    uint64_t addr = 0;
    std::vector<uint8_t> regs;      ///< popped registers, in order
};

/** A call-preceded flush gadget (see file comment). */
struct FlushGadget
{
    uint64_t callAddr = 0;          ///< enter here
    uint64_t returnSite = 0;        ///< the legitimate call-preceded site
};

struct GadgetCatalog
{
    std::vector<PopGadget> popGadgets;
    std::map<int64_t, uint64_t> syscallGadgets;  ///< number -> addr
    std::vector<uint64_t> retGadgets;
    std::vector<FlushGadget> flushGadgets;

    /** Smallest pop gadget covering all of `regs` (in any pop order),
     *  or nullptr. */
    const PopGadget *findPop(const std::vector<uint8_t> &regs) const;

    /** Address of a "syscall N; ret" gadget, or 0. */
    uint64_t findSyscall(int64_t number) const;
};

/** Scans the whole program. */
GadgetCatalog scanGadgets(const isa::Program &program);

} // namespace flowguard::attacks

#endif // FLOWGUARD_ATTACKS_GADGETS_HH
