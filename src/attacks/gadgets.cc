#include "attacks/gadgets.hh"

#include <algorithm>

namespace flowguard::attacks {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

namespace {

/** True if `index` starts "load rX,[sp]; add sp,8" (one pop step). */
bool
isPopStep(const Program &program, size_t index, uint8_t &reg)
{
    if (index + 1 >= program.numInsts())
        return false;
    const Instruction &load = program.inst(index);
    const Instruction &add = program.inst(index + 1);
    if (load.op != Opcode::Load || load.rs != isa::sp_reg ||
        load.imm != 0)
        return false;
    if (add.op != Opcode::AluImm || add.aluOp != isa::AluOp::Add ||
        add.rd != isa::sp_reg || add.imm != 8)
        return false;
    reg = load.rd;
    return true;
}

} // namespace

const PopGadget *
GadgetCatalog::findPop(const std::vector<uint8_t> &regs) const
{
    const PopGadget *best = nullptr;
    for (const PopGadget &gadget : popGadgets) {
        bool covers = true;
        for (uint8_t reg : regs) {
            if (std::find(gadget.regs.begin(), gadget.regs.end(),
                          reg) == gadget.regs.end()) {
                covers = false;
                break;
            }
        }
        if (covers &&
            (!best || gadget.regs.size() < best->regs.size()))
            best = &gadget;
    }
    return best;
}

uint64_t
GadgetCatalog::findSyscall(int64_t number) const
{
    auto it = syscallGadgets.find(number);
    return it == syscallGadgets.end() ? 0 : it->second;
}

GadgetCatalog
scanGadgets(const Program &program)
{
    GadgetCatalog catalog;

    for (size_t i = 0; i < program.numInsts(); ++i) {
        const Instruction &inst = program.inst(i);
        const uint64_t addr = program.instAddr(i);

        if (inst.op == Opcode::Ret)
            catalog.retGadgets.push_back(addr);

        // syscall N; ret
        if (inst.op == Opcode::Syscall &&
            i + 1 < program.numInsts() &&
            program.inst(i + 1).op == Opcode::Ret) {
            catalog.syscallGadgets.emplace(inst.imm, addr);
        }

        // pop chain: consecutive pop steps then ret
        {
            std::vector<uint8_t> regs;
            size_t k = i;
            uint8_t reg = 0;
            while (isPopStep(program, k, reg)) {
                regs.push_back(reg);
                k += 2;
            }
            if (!regs.empty() && k < program.numInsts() &&
                program.inst(k).op == Opcode::Ret) {
                catalog.popGadgets.push_back({addr, std::move(regs)});
            }
        }

        // call-preceded flush gadget: a direct call whose return site
        // reaches a ret within a couple of instructions.
        if (inst.op == Opcode::Call && i + 1 < program.numInsts()) {
            const uint64_t return_site =
                addr + isa::instSize(inst.op);
            bool quick_ret = false;
            for (size_t k = i + 1;
                 k < std::min(i + 4, program.numInsts()); ++k) {
                const Opcode op = program.inst(k).op;
                if (op == Opcode::Ret) {
                    quick_ret = true;
                    break;
                }
                if (program.inst(k).isCofi() || op == Opcode::Halt)
                    break;
            }
            if (quick_ret)
                catalog.flushGadgets.push_back({addr, return_site});
        }
    }
    return catalog;
}

} // namespace flowguard::attacks
