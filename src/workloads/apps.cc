#include "workloads/apps.hh"

#include "isa/builder.hh"
#include "isa/loader.hh"
#include "isa/syscalls.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "workloads/libc.hh"

namespace flowguard::workloads {

using namespace isa;

namespace {

constexpr int64_t conn_fd = 5;

/** Emits a few seeded ALU instructions over scratch registers. */
void
emitAluMix(ModuleBuilder &mod, Rng &rng, size_t count)
{
    static constexpr AluOp ops[] = {AluOp::Add, AluOp::Sub, AluOp::Xor,
                                    AluOp::Mul, AluOp::Or, AluOp::And};
    for (size_t i = 0; i < count; ++i) {
        const int rd = static_cast<int>(rng.range(6, 9));
        if (rng.chance(0.5)) {
            mod.alu(ops[rng.below(std::size(ops))], rd,
                    static_cast<int>(rng.range(6, 9)));
        } else {
            mod.aluImm(ops[rng.below(std::size(ops))], rd,
                       static_cast<int64_t>(rng.range(1, 97)));
        }
    }
}

/** Emits a data-dependent conditional skipping one instruction. */
void
emitCond(ModuleBuilder &mod, Rng &rng, const std::string &tag)
{
    static constexpr Cond conds[] = {Cond::Lt, Cond::Ge, Cond::Eq,
                                     Cond::Ne, Cond::Gt, Cond::Le};
    mod.cmpImm(static_cast<int>(rng.range(6, 9)),
               static_cast<int64_t>(rng.range(0, 255)));
    mod.jcc(conds[rng.below(std::size(conds))], tag);
    mod.aluImm(AluOp::Add, static_cast<int>(rng.range(6, 9)), 1);
    mod.label(tag);
}

/** Number of "hot" leaf fillers reachable through the dispatch
 *  table (the runtime-safe indirect-call targets). */
constexpr size_t hot_filler_count = 16;

/**
 * Adds `count` filler functions (filler_<base>_i). Fillers may call
 * higher-indexed fillers (a DAG, no recursion) and have varying
 * argument arity so TypeArmor has something to discriminate. When
 * `with_dispatch` is set, a fraction of fillers make an indirect
 * call through "hot_table" (the last hot_filler_count fillers, which
 * are call-free leaves — so runtime dispatch can never recurse while
 * the *conservative* target set of every such site spans the whole
 * address-taken universe, exactly the gap real cold code exhibits).
 */
void
emitFillers(ModuleBuilder &mod, Rng &rng, size_t count,
            const std::string &base, bool with_dispatch = false)
{
    const bool dispatch_ok =
        with_dispatch && count > hot_filler_count + 4;
    const size_t leaf_start =
        dispatch_ok ? count - hot_filler_count : count;
    for (size_t i = 0; i < count; ++i) {
        mod.function(base + "_" + std::to_string(i),
                     /*exported=*/false);
        const size_t arity = rng.below(4);
        for (size_t a = 0; a < arity; ++a)
            mod.alu(AluOp::Add, 6, static_cast<int>(a));
        emitAluMix(mod, rng, rng.range(2, 6));
        if (rng.chance(0.6))
            emitCond(mod, rng, "f_skip");
        if (i < leaf_start) {
            if (rng.chance(0.5) && i + 1 < count) {
                const size_t callee = i + 1 + rng.below(count - i - 1);
                // Prepare as many args as any filler might consume.
                mod.movImm(0, 1);
                mod.movImm(1, 2);
                mod.movImm(2, 3);
                mod.call(base + "_" + std::to_string(callee));
            }
            if (dispatch_ok && rng.chance(0.15)) {
                mod.movImm(0, 1);
                mod.movImm(1, 2);
                mod.movImm(2, 3);
                mod.movImm(7, static_cast<int64_t>(
                    8 * rng.below(hot_filler_count)));
                mod.movImmData(8, "hot_table");
                mod.alu(AluOp::Add, 8, 7);
                mod.load(8, 8, 0);
                mod.callInd(8);
            }
        }
        mod.movReg(0, 6);
        mod.ret();
    }
    if (dispatch_ok) {
        std::vector<std::string> hot;
        for (size_t i = leaf_start; i < count; ++i)
            hot.push_back(base + "_" + std::to_string(i));
        mod.funcPtrTable("hot_table", hot, /*exported=*/false);
    }
}

/**
 * The dlopen/dlclose/jit wrappers live in their own tiny library —
 * not in libc — so adding dynamic-code support does not change the
 * fingerprint or layout of every existing workload's libc.
 */
Module
buildLibDl()
{
    ModuleBuilder lib("libdl", ModuleKind::SharedLib);
    lib.function("dl_open");
    lib.syscall(static_cast<int64_t>(Syscall::DlOpen));
    lib.ret();
    lib.function("dl_close");
    lib.syscall(static_cast<int64_t>(Syscall::DlClose));
    lib.ret();
    lib.function("jit_map");
    lib.syscall(static_cast<int64_t>(Syscall::JitMap));
    lib.ret();
    lib.function("jit_unmap");
    lib.syscall(static_cast<int64_t>(Syscall::JitUnmap));
    lib.ret();
    return lib.build();
}

/**
 * One plugin: a SharedLib exporting plug<k>_h<j> handlers. Each
 * handler mixes payload words through a work loop, calls a local
 * (non-exported) leaf, and finishes with checksum() through the PLT —
 * the cross-module edge the dynamic guard must stitch at load time.
 */
Module
buildPlugin(size_t k, const PluginServerSpec &spec, Rng &rng)
{
    ModuleBuilder lib("plugin" + std::to_string(k),
                      ModuleKind::SharedLib);
    lib.needs("libc");

    lib.function("plug" + std::to_string(k) + "_leaf",
                 /*exported=*/false);
    lib.movReg(9, 0);
    lib.aluImm(AluOp::Xor, 9,
               static_cast<int64_t>(0x51 + 7 * k));
    lib.movReg(0, 9);
    lib.ret();

    for (size_t j = 0; j < spec.handlersPerPlugin; ++j) {
        lib.function("plug" + std::to_string(k) + "_h" +
                     std::to_string(j));
        // handler(buf=r0, len=r1)
        lib.movReg(12, 0);              // preserve buf
        lib.movImm(6, 0);
        lib.label("pl_loop");
        lib.cmpImm(6, static_cast<int64_t>(spec.workPerCall));
        lib.jcc(Cond::Ge, "pl_done");
        lib.movReg(7, 6);
        lib.aluImm(AluOp::And, 7, 0x0F);
        lib.aluImm(AluOp::Shl, 7, 3);
        lib.movReg(8, 12);
        lib.alu(AluOp::Add, 8, 7);
        lib.load(9, 8, 0);
        lib.alu(AluOp::Xor, 10, 9);
        emitCond(lib, rng, "pl_skip");
        lib.movReg(0, 9);
        lib.call("plug" + std::to_string(k) + "_leaf");
        lib.alu(AluOp::Add, 10, 0);
        lib.aluImm(AluOp::Add, 6, 1);
        lib.jmp("pl_loop");
        lib.label("pl_done");
        lib.movReg(0, 12);
        lib.movImm(1, 4);
        lib.callExt("checksum");        // plugin -> libc PLT edge
        lib.ret();
    }
    return lib.build();
}

} // namespace

SyntheticApp
buildServerApp(const ServerSpec &spec)
{
    fg_assert(spec.numHandlers >= 1, "server needs handlers");
    fg_assert(spec.numParserStates >= 1, "server needs parser states");
    Rng rng(spec.seed);

    ModuleBuilder exe(spec.name, ModuleKind::Executable);
    exe.needs("libc");

    // --- leaf helpers called from handler hot loops ----------------------
    for (int k = 0; k < 4; ++k) {
        exe.function("leaf_" + std::to_string(k), /*exported=*/false);
        exe.movReg(12, 0);
        exe.aluImm(k % 2 ? AluOp::Xor : AluOp::Add, 12,
                   static_cast<int64_t>(17 + 13 * k));
        exe.movReg(0, 12);
        exe.ret();
    }

    // --- handlers -----------------------------------------------------------
    std::vector<std::string> handler_names;
    for (size_t h = 0; h < spec.numHandlers; ++h) {
        const std::string name = "handler_" + std::to_string(h);
        handler_names.push_back(name);
        exe.function(name, /*exported=*/false);
        if (h == 0 && spec.implantVuln) {
            // The implanted vulnerability (§7.1.2): an unbounded
            // strcpy into a 3-word stack buffer.
            exe.aluImm(AluOp::Sub, sp_reg,
                       static_cast<int64_t>(8 * vuln_buffer_words));
            exe.movReg(1, 0);
            exe.aluImm(AluOp::Add, 1, 8);   // src: payload words
            exe.movReg(0, sp_reg);          // dst: stack buffer
            exe.callExt("strcpy_w");
            exe.aluImm(AluOp::Add, sp_reg,
                       static_cast<int64_t>(8 * vuln_buffer_words));
            exe.ret();
            continue;
        }
        if (h == 1 && spec.implantVuln) {
            // Second implanted bug: a magic-gated debug command with
            // an unchecked array index — a data-only write primitive
            // (the COOP/control-jujutsu vector: corrupt a function
            // pointer without ever breaking an edge).
            exe.load(6, 0, 8);              // payload word 0: magic
            exe.movImm(7, vuln_debug_magic);
            exe.cmp(6, 7);
            exe.jcc(Cond::Ne, "dbg_skip");
            exe.load(6, 0, 16);             // word 1: byte index
            exe.load(7, 0, 24);             // word 2: value
            exe.movImmData(8, "stats_array");
            exe.alu(AluOp::Add, 8, 6);
            exe.store(8, 0, 7);             // OOB write past stats
            exe.label("dbg_skip");
            exe.ret();
            continue;
        }
        // handler(buf=r0, len=r1): scan payload words with
        // data-dependent conditionals, a leaf call per iteration
        // (call/return density of real request-processing code), and
        // optional helper calls.
        exe.movImm(6, 0);
        exe.label("h_loop");
        exe.cmpImm(6, static_cast<int64_t>(spec.workPerRequest));
        exe.jcc(Cond::Ge, "h_done");
        exe.movReg(7, 6);
        exe.aluImm(AluOp::And, 7, 0x1F);
        exe.aluImm(AluOp::Shl, 7, 3);
        exe.movReg(8, 0);
        exe.alu(AluOp::Add, 8, 7);
        exe.load(9, 8, 0);
        exe.alu(AluOp::Xor, 10, 9);
        exe.cmpImm(9, static_cast<int64_t>(rng.range(16, 200)));
        exe.jcc(rng.chance(0.5) ? Cond::Lt : Cond::Ge, "h_skip");
        exe.aluImm(AluOp::Add, 10, 1);
        exe.label("h_skip");
        // A leaf call every 4th iteration: the call/return density of
        // request-processing code without drowning the trace in TIPs.
        exe.movReg(7, 6);
        exe.aluImm(AluOp::And, 7, 3);
        exe.cmpImm(7, 0);
        exe.jcc(Cond::Ne, "h_no_leaf");
        exe.movReg(11, 0);          // preserve buf across the leaf
        exe.movReg(0, 9);
        exe.call("leaf_" + std::to_string(h % 4));
        exe.movReg(0, 11);
        exe.label("h_no_leaf");
        exe.aluImm(AluOp::Add, 6, 1);
        exe.jmp("h_loop");
        exe.label("h_done");
        if (rng.chance(0.5)) {
            // checksum(buf, 4 words) via the PLT.
            exe.movImm(1, 4);
            exe.callExt("checksum");
        }
        if (rng.chance(0.4) && spec.numFillerFuncs > 0) {
            exe.movImm(0, 1);
            exe.movImm(1, 2);
            exe.movImm(2, 3);
            exe.call("filler_x_" + std::to_string(
                rng.below(spec.numFillerFuncs)));
        }
        if (rng.chance(0.35) && spec.fillerTableSlots > 0) {
            // Indirect helper dispatch through the filler table —
            // CallInd sites beyond the main handler dispatch.
            exe.movImm(0, 1);
            exe.movImm(1, 2);
            exe.movImm(2, 3);
            exe.movImm(6, static_cast<int64_t>(
                8 * rng.below(spec.fillerTableSlots)));
            exe.movImmData(7, "filler_table");
            exe.alu(AluOp::Add, 7, 6);
            exe.load(7, 7, 0);
            exe.callInd(7);
        }
        exe.ret();
    }

    // --- parser states (tail-dispatched via a jump table) ---------------
    std::vector<std::string> state_names;
    for (size_t s = 0; s < spec.numParserStates; ++s) {
        const std::string name = "pstate_" + std::to_string(s);
        state_names.push_back(name);
        exe.function(name, /*exported=*/false);
        emitAluMix(exe, rng, 1 + s % 3);
        emitCond(exe, rng, "ps_skip");
        // Handler dispatch: type byte indexes handler_table.
        exe.load(3, 0, 0);
        exe.aluImm(AluOp::And, 3, 0xFF);
        exe.cmpImm(3, static_cast<int64_t>(spec.numHandlers));
        exe.jcc(Cond::Lt, "ps_ok");
        exe.movImm(3, 0);
        exe.label("ps_ok");
        exe.aluImm(AluOp::Shl, 3, 3);
        exe.movImmData(5, "handler_table");
        exe.alu(AluOp::Add, 5, 3);
        exe.load(6, 5, 0);
        exe.movImm(1, static_cast<int64_t>(request_size));
        exe.callInd(6);                 // handler(buf, len)
        exe.ret();
    }

    // --- request entry: parser state machine ---------------------------
    exe.function("handle_request", /*exported=*/false);
    exe.load(3, 0, 0);
    exe.movReg(4, 3);
    exe.aluImm(AluOp::Shr, 4, 8);
    exe.aluImm(AluOp::And, 4, 0xFF);
    exe.cmpImm(4, static_cast<int64_t>(spec.numParserStates));
    exe.jcc(Cond::Lt, "hr_ok");
    exe.movImm(4, 0);
    exe.label("hr_ok");
    exe.aluImm(AluOp::Shl, 4, 3);
    exe.movImmData(5, "parser_table");
    exe.alu(AluOp::Add, 5, 4);
    exe.load(5, 5, 0);
    exe.jmpInd(5);                      // tail dispatch to pstate_*
    exe.jumpTableHint("parser_table",
                      static_cast<uint32_t>(spec.numParserStates));

    // --- signal handler (address-taken via sigaction) --------------------
    exe.function("sig_handler", /*exported=*/false);
    exe.aluImm(AluOp::Add, 6, 1);
    exe.ret();

    if (spec.implantVuln) {
        // Disabled administrative functionality: its address appears
        // nowhere (not address-taken), so no legitimate indirect
        // transfer can reach it — the COOP attack's destination.
        exe.function("maintenance_mode", /*exported=*/false);
        exe.movImm(6, 0);
        exe.label("mm_loop");
        exe.cmpImm(6, 8);
        exe.jcc(Cond::Ge, "mm_done");
        exe.aluImm(AluOp::Add, 10, 3);
        exe.aluImm(AluOp::Add, 6, 1);
        exe.jmp("mm_loop");
        exe.label("mm_done");
        exe.ret();
        // The stats array the debug command indexes; the dispatch
        // table sits above it in the data segment.
        exe.dataBss("stats_array", 64, /*exported=*/false);
    }

    // --- main ------------------------------------------------------------
    exe.function("main");
    exe.movImm(0, 11);
    exe.movImmFunc(1, "sig_handler");
    exe.callExt("sigaction_install");
    exe.callExt("sys_socket");
    exe.aluImm(AluOp::Sub, sp_reg, 512);
    exe.movReg(13, sp_reg);             // request buffer base
    exe.label("accept_loop");
    exe.callExt("sys_accept");
    exe.cmpImm(0, 0);
    exe.jcc(Cond::Eq, "srv_done");
    exe.movImm(0, conn_fd);
    exe.movReg(1, 13);
    exe.movImm(2, static_cast<int64_t>(request_size));
    exe.callExt("recv_buf");
    exe.cmpImm(0, 0);
    exe.jcc(Cond::Eq, "srv_done");
    exe.movReg(0, 13);
    exe.call("handle_request");
    exe.movImm(0, conn_fd);
    exe.movReg(1, 13);
    exe.movImm(2, 16);
    exe.callExt("write_buf");   // response via write(): an endpoint
    exe.callExt("gettimeofday");
    exe.jmp("accept_loop");
    exe.label("srv_done");
    exe.movImm(0, 0);
    exe.callExt("sys_exit");
    exe.halt();

    // --- filler bulk + tables ----------------------------------------------
    emitFillers(exe, rng, spec.numFillerFuncs, "filler_x",
                /*with_dispatch=*/true);

    exe.funcPtrTable("handler_table", handler_names,
                     /*exported=*/false);
    exe.funcPtrTable("parser_table", state_names, /*exported=*/false);
    if (spec.fillerTableSlots > 0) {
        std::vector<std::string> slots;
        for (size_t i = 0; i < spec.fillerTableSlots; ++i)
            slots.push_back("filler_x_" + std::to_string(
                rng.below(spec.numFillerFuncs)));
        exe.funcPtrTable("filler_table", slots, /*exported=*/false);
    }

    SyntheticApp app;
    app.name = spec.name;
    app.program = Loader()
        .addExecutable(exe.build())
        .addLibrary(buildLibc())
        .addVdso(buildVdso())
        .cr3(spec.cr3)
        .layout(spec.layout)
        .link();
    return app;
}

SyntheticApp
buildPluginServerApp(const PluginServerSpec &spec)
{
    fg_assert(spec.numPlugins >= 1, "plugin server needs plugins");
    fg_assert(spec.handlersPerPlugin >= 1,
              "plugins need exported handlers");
    fg_assert(spec.numPlugins < plugin_cmd_local,
              "plugin commands collide with the local command");
    Rng rng(spec.seed);

    ModuleBuilder exe(spec.name, ModuleKind::Executable);
    for (size_t k = 0; k < spec.numPlugins; ++k)
        exe.needs("plugin" + std::to_string(k));
    exe.needs("libdl");
    exe.needs("libc");

    // --- local (always-resident) handler ---------------------------------
    exe.function("local_cmd", /*exported=*/false);
    exe.movReg(12, 0);
    exe.movImm(6, 0);
    exe.label("lc_loop");
    exe.cmpImm(6, static_cast<int64_t>(spec.workPerCall));
    exe.jcc(Cond::Ge, "lc_done");
    emitAluMix(exe, rng, 2);
    exe.aluImm(AluOp::Add, 6, 1);
    exe.jmp("lc_loop");
    exe.label("lc_done");
    exe.movReg(0, 12);
    exe.movImm(1, 4);
    exe.callExt("checksum");
    exe.ret();

    if (spec.implantVuln) {
        // Same implanted bug as the static servers: an unbounded
        // strcpy into a 3-word stack buffer (§7.1.2).
        exe.function("vuln_cmd", /*exported=*/false);
        exe.aluImm(AluOp::Sub, sp_reg,
                   static_cast<int64_t>(8 * vuln_buffer_words));
        exe.movReg(1, 0);
        exe.aluImm(AluOp::Add, 1, 8);   // src: payload words
        exe.movReg(0, sp_reg);          // dst: stack buffer
        exe.callExt("strcpy_w");
        exe.aluImm(AluOp::Add, sp_reg,
                   static_cast<int64_t>(8 * vuln_buffer_words));
        exe.ret();
    }

    // --- request entry ----------------------------------------------------
    // cmd byte 0 selects: a plugin (dlopen, dispatch through
    // plugin_table, dlclose), the local handler, or (implanted) the
    // vulnerable handler. Byte 1 picks the handler within the plugin.
    exe.function("handle_request", /*exported=*/false);
    exe.load(3, 0, 0);
    exe.movReg(4, 3);
    exe.aluImm(AluOp::Shr, 4, 8);
    exe.aluImm(AluOp::And, 4, 0xFF);    // r4 = handler byte
    exe.aluImm(AluOp::And, 3, 0xFF);    // r3 = command byte
    exe.cmpImm(3, static_cast<int64_t>(spec.numPlugins));
    exe.jcc(Cond::Lt, "hq_plugin");
    exe.cmpImm(3, static_cast<int64_t>(plugin_cmd_local));
    exe.jcc(Cond::Eq, "hq_local");
    if (spec.implantVuln) {
        exe.cmpImm(3, static_cast<int64_t>(plugin_cmd_vuln));
        exe.jcc(Cond::Eq, "hq_vuln");
    }
    exe.ret();                          // unknown command: drop

    exe.label("hq_plugin");
    exe.movReg(12, 0);                  // preserve buf
    exe.movReg(11, 3);                  // preserve command
    // dlopen(moduleIndex): plugin k is module 1 + k (exec is 0).
    exe.movReg(0, 3);
    exe.aluImm(AluOp::Add, 0, 1);
    exe.callExt("dl_open");
    exe.cmpImm(4, static_cast<int64_t>(spec.handlersPerPlugin));
    exe.jcc(Cond::Lt, "hq_hok");
    exe.movImm(4, 0);
    exe.label("hq_hok");
    exe.movReg(5, 11);
    exe.aluImm(AluOp::Mul, 5,
               static_cast<int64_t>(spec.handlersPerPlugin));
    exe.alu(AluOp::Add, 5, 4);
    exe.aluImm(AluOp::Shl, 5, 3);
    exe.movImmData(6, "plugin_table");
    exe.alu(AluOp::Add, 6, 5);
    exe.load(6, 6, 0);
    exe.movReg(0, 12);
    exe.movImm(1, static_cast<int64_t>(request_size));
    exe.callInd(6);                     // plug<k>_h<j>(buf, len)
    exe.movReg(0, 11);
    exe.aluImm(AluOp::Add, 0, 1);
    exe.callExt("dl_close");
    exe.ret();

    exe.label("hq_local");
    exe.call("local_cmd");
    exe.ret();

    if (spec.implantVuln) {
        exe.label("hq_vuln");
        exe.call("vuln_cmd");
        exe.ret();
    }

    // --- main: the usual accept/recv/handle/write loop -------------------
    exe.function("main");
    exe.callExt("sys_socket");
    exe.aluImm(AluOp::Sub, sp_reg, 512);
    exe.movReg(13, sp_reg);             // request buffer base
    exe.label("accept_loop");
    exe.callExt("sys_accept");
    exe.cmpImm(0, 0);
    exe.jcc(Cond::Eq, "srv_done");
    exe.movImm(0, conn_fd);
    exe.movReg(1, 13);
    exe.movImm(2, static_cast<int64_t>(request_size));
    exe.callExt("recv_buf");
    exe.cmpImm(0, 0);
    exe.jcc(Cond::Eq, "srv_done");
    exe.movReg(0, 13);
    exe.call("handle_request");
    exe.movImm(0, conn_fd);
    exe.movReg(1, 13);
    exe.movImm(2, 16);
    exe.callExt("write_buf");   // response via write(): an endpoint
    exe.jmp("accept_loop");
    exe.label("srv_done");
    exe.movImm(0, 0);
    exe.callExt("sys_exit");
    exe.halt();

    // --- filler bulk + the imported-handler dispatch table ----------------
    emitFillers(exe, rng, spec.numFillerFuncs, "filler_p");

    std::vector<std::string> plugin_handlers;
    for (size_t k = 0; k < spec.numPlugins; ++k)
        for (size_t j = 0; j < spec.handlersPerPlugin; ++j)
            plugin_handlers.push_back("plug" + std::to_string(k) +
                                      "_h" + std::to_string(j));
    exe.funcPtrTable("plugin_table", plugin_handlers,
                     /*exported=*/false);

    Loader loader;
    loader.addExecutable(exe.build());
    for (size_t k = 0; k < spec.numPlugins; ++k)
        loader.addLibrary(buildPlugin(k, spec, rng));
    loader.addLibrary(buildLibDl());
    loader.addLibrary(buildLibc());
    loader.addVdso(buildVdso());

    SyntheticApp app;
    app.name = spec.name;
    app.program =
        loader.cr3(spec.cr3).layout(spec.layout).link();
    for (size_t k = 0; k < spec.numPlugins; ++k)
        app.dynamicModules.push_back(static_cast<uint32_t>(1 + k));
    return app;
}

SyntheticApp
buildUtilityApp(const UtilitySpec &spec)
{
    Rng rng(spec.seed);
    ModuleBuilder exe(spec.name, ModuleKind::Executable);
    exe.needs("libc");

    switch (spec.kind) {
      case UtilityKind::Dd: {
        // One big read, a long word-copy loop, one write: very few
        // distinct branches and hardly any syscalls.
        exe.dataBss("io_buf", 4096, /*exported=*/false);
        exe.function("main");
        exe.movImm(0, 0);
        exe.movImmData(1, "io_buf");
        exe.movImm(2, 2048);
        exe.callExt("read_buf");
        exe.movImm(6, 0);
        exe.label("dd_loop");
        exe.cmpImm(6, static_cast<int64_t>(spec.records * 16));
        exe.jcc(Cond::Ge, "dd_done");
        exe.movReg(7, 6);
        exe.aluImm(AluOp::And, 7, 0xFF);
        exe.aluImm(AluOp::Shl, 7, 3);
        exe.movImmData(8, "io_buf");
        exe.alu(AluOp::Add, 8, 7);
        exe.load(9, 8, 0);
        exe.aluImm(AluOp::Add, 9, 1);
        exe.store(8, 2048, 9);
        exe.aluImm(AluOp::Add, 6, 1);
        exe.jmp("dd_loop");
        exe.label("dd_done");
        exe.movImm(0, 1);
        exe.movImmData(1, "io_buf");
        exe.movImm(2, 64);
        exe.callExt("write_buf");
        exe.movImm(0, 0);
        exe.callExt("sys_exit");
        exe.halt();
        break;
      }

      case UtilityKind::Tar: {
        // Per-record: read a header, then real compression-ish work
        // (many checksum passes over the block) before emitting it.
        // Work dwarfs syscall count, like archiving real files.
        exe.dataBss("rec_buf", 512, /*exported=*/false);
        exe.function("main");
        exe.movImm(10, 0);              // record counter
        exe.label("tar_loop");
        exe.cmpImm(10, static_cast<int64_t>(spec.records));
        exe.jcc(Cond::Ge, "tar_done");
        exe.movImm(0, 0);
        exe.movImmData(1, "rec_buf");
        exe.movImm(2, 32);
        exe.callExt("read_buf");
        exe.movImm(11, 0);              // pass counter
        exe.label("tar_pass");
        exe.cmpImm(11, 120);
        exe.jcc(Cond::Ge, "tar_emit");
        exe.movImmData(0, "rec_buf");
        exe.movImm(1, 64);
        exe.callExt("checksum");
        exe.aluImm(AluOp::Add, 11, 1);
        exe.jmp("tar_pass");
        exe.label("tar_emit");
        exe.cmpImm(0, 0);
        exe.jcc(Cond::Eq, "tar_skip");
        exe.movImm(0, 1);
        exe.movImmData(1, "rec_buf");
        exe.movImm(2, 8);
        exe.callExt("write_buf");
        exe.label("tar_skip");
        exe.aluImm(AluOp::Add, 10, 1);
        exe.jmp("tar_loop");
        exe.label("tar_done");
        exe.movImm(0, 0);
        exe.callExt("sys_exit");
        exe.halt();
        break;
      }

      case UtilityKind::Make: {
        // A dependency DAG walk: target_i "rebuilds" by consulting
        // timestamps and invoking its prerequisites.
        const size_t targets = 12;
        for (size_t t = targets; t-- > 0;) {
            exe.function("target_" + std::to_string(t),
                         /*exported=*/false);
            // "Rebuild" work: a dependency-scan loop per target.
            exe.movImm(11, 0);
            exe.label("dep_scan");
            exe.cmpImm(11, 40);
            exe.jcc(Cond::Ge, "dep_done");
            emitAluMix(exe, rng, 4);
            exe.aluImm(AluOp::Add, 11, 1);
            exe.jmp("dep_scan");
            exe.label("dep_done");
            if (t + 1 < targets)
                exe.call("target_" + std::to_string(t + 1));
            if (t + 2 < targets && rng.chance(0.5))
                exe.call("target_" + std::to_string(t + 2));
            exe.ret();
        }
        exe.function("main");
        exe.movImm(10, 0);
        exe.label("mk_loop");
        exe.cmpImm(10, static_cast<int64_t>(spec.records / 8 + 1));
        exe.jcc(Cond::Ge, "mk_done");
        exe.call("target_0");
        exe.callExt("sys_open");
        exe.callExt("sys_close");
        exe.aluImm(AluOp::Add, 10, 1);
        exe.jmp("mk_loop");
        exe.label("mk_done");
        exe.movImm(0, 0);
        exe.callExt("sys_exit");
        exe.halt();
        break;
      }

      case UtilityKind::Scp: {
        // Read / encrypt-ish (many mixing passes) / write pipeline,
        // network-style chunking.
        exe.dataBss("xfer_buf", 512, /*exported=*/false);
        exe.function("main");
        exe.movImm(10, 0);
        exe.label("scp_loop");
        exe.cmpImm(10, static_cast<int64_t>(spec.records));
        exe.jcc(Cond::Ge, "scp_done");
        exe.movImm(0, 0);
        exe.movImmData(1, "xfer_buf");
        exe.movImm(2, 16);
        exe.callExt("read_buf");
        exe.cmpImm(0, 0);
        exe.jcc(Cond::Eq, "scp_done");
        exe.movImm(11, 0);              // cipher pass counter
        exe.label("scp_pass");
        exe.cmpImm(11, 160);
        exe.jcc(Cond::Ge, "scp_emit");
        exe.movImmData(0, "xfer_buf");
        exe.movImm(1, 64);
        exe.callExt("checksum");
        exe.aluImm(AluOp::Add, 11, 1);
        exe.jmp("scp_pass");
        exe.label("scp_emit");
        exe.movImm(0, 1);
        exe.movImmData(1, "xfer_buf");
        exe.movImm(2, 16);
        exe.callExt("write_buf");
        exe.aluImm(AluOp::Add, 10, 1);
        exe.jmp("scp_loop");
        exe.label("scp_done");
        exe.movImm(0, 0);
        exe.callExt("sys_exit");
        exe.halt();
        break;
      }
    }

    SyntheticApp app;
    app.name = spec.name;
    app.program = Loader()
        .addExecutable(exe.build())
        .addLibrary(buildLibc())
        .addVdso(buildVdso())
        .cr3(spec.cr3)
        .link();
    return app;
}

SyntheticApp
buildSpecKernel(const SpecKernelSpec &spec)
{
    Rng rng(spec.seed);
    ModuleBuilder exe(spec.name, ModuleKind::Executable);
    exe.needs("libc");
    exe.dataBss("work_arr", 2048, /*exported=*/false);

    // Indirect-call targets ("codec stages" in the h264ref analogy).
    const size_t ops = spec.indirectPerIter > 0 ? 4 : 0;
    std::vector<std::string> op_names;
    for (size_t k = 0; k < ops; ++k) {
        const std::string name = "op_" + std::to_string(k);
        op_names.push_back(name);
        exe.function(name, /*exported=*/false);
        exe.alu(AluOp::Add, 6, 0);      // consumes r0
        emitAluMix(exe, rng, 2);
        exe.movReg(0, 6);
        exe.ret();
    }
    if (ops > 0)
        exe.funcPtrTable("op_table", op_names, /*exported=*/false);

    for (size_t k = 0; k < spec.helperFuncs; ++k) {
        exe.function("helper_" + std::to_string(k),
                     /*exported=*/false);
        emitAluMix(exe, rng, rng.range(2, 5));
        exe.ret();
    }

    exe.function("main");
    exe.movImm(10, 0x1234);
    exe.movImm(11, static_cast<int64_t>(spec.iterations));
    exe.label("outer");
    exe.cmpImm(11, 0);
    exe.jcc(Cond::Eq, "done");
    exe.aluImm(AluOp::Sub, 11, 1);
    emitAluMix(exe, rng, spec.aluPerIter);
    for (size_t l = 0; l < spec.loadsPerIter; ++l) {
        exe.movReg(7, 10);
        exe.aluImm(AluOp::And, 7, 0xF8);
        exe.movImmData(8, "work_arr");
        exe.alu(AluOp::Add, 8, 7);
        exe.load(9, 8, 0);
        exe.alu(AluOp::Add, 10, 9);
        exe.store(8, 1024, 10);
    }
    for (size_t b = 0; b < spec.branchesPerIter; ++b) {
        const std::string skip = "b_skip_" + std::to_string(b);
        exe.cmpImm(10, static_cast<int64_t>(rng.range(1, 1'000'000)));
        exe.jcc(rng.chance(0.5) ? Cond::Lt : Cond::Ge, skip);
        exe.aluImm(AluOp::Add, 12, 1);
        exe.label(skip);
    }
    for (size_t c = 0; c < std::min<size_t>(spec.helperFuncs, 2);
         ++c) {
        exe.call("helper_" + std::to_string(
            rng.below(spec.helperFuncs)));
    }
    for (size_t n = 0; n < spec.indirectPerIter; ++n) {
        exe.movReg(6, 10);
        exe.aluImm(AluOp::And, 6, static_cast<int64_t>(ops - 1));
        exe.aluImm(AluOp::Shl, 6, 3);
        exe.movImmData(7, "op_table");
        exe.alu(AluOp::Add, 7, 6);
        exe.load(7, 7, 0);
        exe.movReg(0, 10);
        exe.callInd(7);
        exe.alu(AluOp::Xor, 10, 0);
    }
    exe.jmp("outer");
    exe.label("done");
    exe.movImm(0, 0);
    exe.callExt("sys_exit");
    exe.halt();

    SyntheticApp app;
    app.name = spec.name;
    app.program = Loader()
        .addExecutable(exe.build())
        .addLibrary(buildLibc())
        .addVdso(buildVdso())
        .cr3(spec.cr3)
        .link();
    return app;
}

std::vector<ServerSpec>
serverSuite(bool implant_vuln)
{
    ServerSpec nginx;
    nginx.name = "nginx";
    nginx.numHandlers = 10;
    nginx.numParserStates = 6;
    nginx.numFillerFuncs = 140;
    nginx.fillerTableSlots = 28;
    nginx.workPerRequest = 4000;
    nginx.seed = 11;
    nginx.cr3 = 0x1100;
    nginx.implantVuln = implant_vuln;

    ServerSpec vsftpd;
    vsftpd.name = "vsftpd";
    vsftpd.numHandlers = 6;
    vsftpd.numParserStates = 4;
    vsftpd.numFillerFuncs = 70;
    vsftpd.fillerTableSlots = 14;
    vsftpd.workPerRequest = 5000;
    vsftpd.seed = 12;
    vsftpd.cr3 = 0x1200;

    ServerSpec openssh;
    openssh.name = "openssh";
    openssh.numHandlers = 8;
    openssh.numParserStates = 5;
    openssh.numFillerFuncs = 110;
    openssh.fillerTableSlots = 16;
    openssh.workPerRequest = 3200;
    openssh.seed = 13;
    openssh.cr3 = 0x1300;

    ServerSpec exim;
    exim.name = "exim";
    exim.numHandlers = 7;
    exim.numParserStates = 5;
    exim.numFillerFuncs = 90;
    exim.fillerTableSlots = 18;
    exim.workPerRequest = 4500;
    exim.seed = 14;
    exim.cr3 = 0x1400;

    return {nginx, vsftpd, openssh, exim};
}

std::vector<UtilitySpec>
utilitySuite()
{
    UtilitySpec tar{"tar", UtilityKind::Tar, 16, 21, 0x2100};
    UtilitySpec make{"make", UtilityKind::Make, 64, 22, 0x2200};
    UtilitySpec scp{"scp", UtilityKind::Scp, 16, 23, 0x2300};
    UtilitySpec dd{"dd", UtilityKind::Dd, 16384, 24, 0x2400};
    return {tar, make, scp, dd};
}

std::vector<SpecKernelSpec>
specSuite()
{
    auto mk = [](const char *name, uint64_t iters, size_t alu,
                 size_t br, size_t ind, size_t helpers, size_t loads,
                 uint64_t seed, uint64_t cr3) {
        SpecKernelSpec spec;
        spec.name = name;
        spec.iterations = iters;
        spec.aluPerIter = alu;
        spec.branchesPerIter = br;
        spec.indirectPerIter = ind;
        spec.helperFuncs = helpers;
        spec.loadsPerIter = loads;
        spec.seed = seed;
        spec.cr3 = cr3;
        return spec;
    };
    return {
        mk("perlbench", 2200, 10, 6, 1, 6, 3, 31, 0x3100),
        mk("bzip2", 2600, 14, 5, 0, 3, 4, 32, 0x3200),
        mk("gcc", 2000, 8, 6, 2, 8, 4, 33, 0x3300),
        mk("mcf", 2400, 6, 3, 0, 2, 8, 34, 0x3400),
        mk("milc", 2600, 16, 2, 0, 3, 6, 35, 0x3500),
        mk("gobmk", 2000, 8, 7, 1, 6, 3, 36, 0x3600),
        mk("hmmer", 2800, 18, 3, 0, 2, 5, 37, 0x3700),
        mk("sjeng", 2200, 8, 7, 1, 5, 3, 38, 0x3800),
        mk("libquantum", 3000, 12, 2, 0, 2, 4, 39, 0x3900),
        mk("h264ref", 2200, 2, 1, 8, 1, 1, 40, 0x3a00),
        mk("lbm", 3000, 14, 1, 0, 1, 8, 41, 0x3b00),
        mk("sphinx3", 2400, 10, 4, 1, 4, 5, 42, 0x3c00),
    };
}

std::vector<uint8_t>
makeRequest(uint8_t handler, uint8_t state,
            const std::vector<uint64_t> &payload)
{
    std::vector<uint8_t> request(request_size, 0);
    request[0] = handler;
    request[1] = state;
    size_t offset = 8;
    for (uint64_t word : payload) {
        if (offset + 8 > request_size)
            break;
        for (int b = 0; b < 8; ++b)
            request[offset + static_cast<size_t>(b)] =
                static_cast<uint8_t>(word >> (8 * b));
        offset += 8;
    }
    return request;
}

std::vector<uint8_t>
makeBenignStream(size_t requests, uint64_t seed, size_t num_handlers,
                 size_t num_states)
{
    Rng rng(seed);
    std::vector<uint8_t> stream;
    stream.reserve(requests * request_size);
    for (size_t i = 0; i < requests; ++i) {
        // Benign payloads stay short of the overflow: at most two
        // nonzero words, then the zero terminator.
        std::vector<uint64_t> payload;
        const size_t words = rng.below(3);
        for (size_t w = 0; w < words; ++w)
            payload.push_back(rng.range(1, 250));
        payload.push_back(0);
        auto request = makeRequest(
            static_cast<uint8_t>(rng.below(num_handlers)),
            static_cast<uint8_t>(rng.below(num_states)), payload);
        stream.insert(stream.end(), request.begin(), request.end());
    }
    return stream;
}

std::vector<uint8_t>
makePluginRequest(uint8_t cmd, uint8_t handler,
                  const std::vector<uint64_t> &payload)
{
    std::vector<uint8_t> request(request_size, 0);
    request[0] = cmd;
    request[1] = handler;
    size_t offset = 8;
    for (uint64_t word : payload) {
        if (offset + 8 > request_size)
            break;
        for (int b = 0; b < 8; ++b)
            request[offset + static_cast<size_t>(b)] =
                static_cast<uint8_t>(word >> (8 * b));
        offset += 8;
    }
    return request;
}

std::vector<uint8_t>
makePluginStream(size_t requests, uint64_t seed,
                 const PluginServerSpec &spec)
{
    Rng rng(seed);
    std::vector<uint8_t> stream;
    stream.reserve(requests * request_size);
    for (size_t i = 0; i < requests; ++i) {
        std::vector<uint64_t> payload;
        const size_t words = rng.below(3);
        for (size_t w = 0; w < words; ++w)
            payload.push_back(rng.range(1, 250));
        payload.push_back(0);
        uint8_t cmd = plugin_cmd_local;
        uint8_t handler = 0;
        if (rng.chance(0.8)) {          // a dlopen/dlclose cycle
            cmd = static_cast<uint8_t>(rng.below(spec.numPlugins));
            handler = static_cast<uint8_t>(
                rng.below(spec.handlersPerPlugin));
        }
        auto request = makePluginRequest(cmd, handler, payload);
        stream.insert(stream.end(), request.begin(), request.end());
    }
    return stream;
}

RunResult
runOnce(const isa::Program &program, const std::vector<uint8_t> &input,
        cpu::TraceSink *sink, uint64_t max_insts)
{
    cpu::Cpu cpu(program);
    cpu::BasicKernel kernel;
    kernel.setInput(input);
    cpu.setSyscallHandler(&kernel);
    if (sink)
        cpu.addTraceSink(sink);
    RunResult result;
    result.stop = cpu.run(max_insts);
    result.instructions = cpu.instCount();
    result.syscalls = kernel.totalSyscalls();
    return result;
}

} // namespace flowguard::workloads
