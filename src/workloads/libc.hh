/**
 * @file
 * The synthetic C library shared by every workload.
 *
 * Provides the services the applications need (memcpy, the
 * deliberately unsafe strcpy analogue, syscall wrappers, a malloc,
 * a sigreturn trampoline like glibc's __restore_rt) and — exactly as
 * a real libc does — a supply of ROP gadget material: functions whose
 * epilogues restore registers from the stack ("pop rX; ret"
 * sequences, in the spirit of setjmp/longjmp and __libc_csu_init).
 *
 * All copies operate on 64-bit words (the ISA's memory granule); a
 * "string" is terminated by an all-zero word.
 */

#ifndef FLOWGUARD_WORKLOADS_LIBC_HH
#define FLOWGUARD_WORKLOADS_LIBC_HH

#include "isa/module.hh"

namespace flowguard::workloads {

/**
 * Builds the libc module. Exported functions:
 *
 *  - memcpy(dst=r0, src=r1, nwords=r2)
 *  - strcpy_w(dst=r0, src=r1)            unbounded word copy (vuln!)
 *  - read_buf(fd=r0, buf=r1, n=r2)       read() wrapper
 *  - write_buf(fd=r0, buf=r1, n=r2)      write() wrapper
 *  - recv_buf / send_buf                  socket flavors
 *  - malloc(n=r0)                         bump allocator over mmap
 *  - gettimeofday()                       syscall fallback (the VDSO
 *                                         interposes when present)
 *  - sigaction_install(sig=r0, fn=r1)
 *  - restore_rt()                         the sigreturn trampoline
 *  - ctx_restore()                        pop r2; pop r1; pop r0; ret
 *                                         (longjmp-style epilogue)
 *  - checksum(buf=r0, nwords=r1)
 */
isa::Module buildLibc();

/** Builds the VDSO module exporting the fast gettimeofday. */
isa::Module buildVdso();

} // namespace flowguard::workloads

#endif // FLOWGUARD_WORKLOADS_LIBC_HH
