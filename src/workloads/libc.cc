#include "workloads/libc.hh"

#include "isa/builder.hh"
#include "isa/syscalls.hh"

namespace flowguard::workloads {

using namespace isa;

Module
buildLibc()
{
    ModuleBuilder lib("libc", ModuleKind::SharedLib);

    // memcpy(dst=r0, src=r1, nwords=r2)
    lib.function("memcpy");
    lib.label("copy_loop");
    lib.cmpImm(2, 0);
    lib.jcc(Cond::Eq, "copy_done");
    lib.load(6, 1, 0);
    lib.store(0, 0, 6);
    lib.aluImm(AluOp::Add, 0, 8);
    lib.aluImm(AluOp::Add, 1, 8);
    lib.aluImm(AluOp::Sub, 2, 1);
    lib.jmp("copy_loop");
    lib.label("copy_done");
    lib.ret();

    // strcpy_w(dst=r0, src=r1): copies words until an all-zero word.
    // No bound on the destination — the classic overflow primitive.
    lib.function("strcpy_w");
    lib.label("scpy_loop");
    lib.load(6, 1, 0);
    lib.cmpImm(6, 0);
    lib.jcc(Cond::Eq, "scpy_done");
    lib.store(0, 0, 6);
    lib.aluImm(AluOp::Add, 0, 8);
    lib.aluImm(AluOp::Add, 1, 8);
    lib.jmp("scpy_loop");
    lib.label("scpy_done");
    lib.store(0, 0, 6);
    lib.ret();

    // memset_w(dst=r0, value=r1, nwords=r2)
    lib.function("memset_w");
    lib.label("mset_loop");
    lib.cmpImm(2, 0);
    lib.jcc(Cond::Eq, "mset_done");
    lib.store(0, 0, 1);
    lib.aluImm(AluOp::Add, 0, 8);
    lib.aluImm(AluOp::Sub, 2, 1);
    lib.jmp("mset_loop");
    lib.label("mset_done");
    lib.ret();

    // checksum(buf=r0, nwords=r1) -> r0
    lib.function("checksum");
    lib.movImm(6, 0);
    lib.label("ck_loop");
    lib.cmpImm(1, 0);
    lib.jcc(Cond::Eq, "ck_done");
    lib.load(7, 0, 0);
    lib.alu(AluOp::Xor, 6, 7);
    lib.aluImm(AluOp::Add, 0, 8);
    lib.aluImm(AluOp::Sub, 1, 1);
    lib.jmp("ck_loop");
    lib.label("ck_done");
    lib.movReg(0, 6);
    lib.ret();

    // Syscall wrappers: arguments already sit in r0..r2.
    lib.function("read_buf");
    lib.syscall(static_cast<int64_t>(Syscall::Read));
    lib.ret();
    lib.function("write_buf");
    lib.syscall(static_cast<int64_t>(Syscall::Write));
    lib.ret();
    lib.function("recv_buf");
    lib.syscall(static_cast<int64_t>(Syscall::Recv));
    lib.ret();
    lib.function("send_buf");
    lib.syscall(static_cast<int64_t>(Syscall::Send));
    lib.ret();
    lib.function("sys_accept");
    lib.syscall(static_cast<int64_t>(Syscall::Accept));
    lib.ret();
    lib.function("sys_socket");
    lib.syscall(static_cast<int64_t>(Syscall::Socket));
    lib.ret();
    lib.function("sys_open");
    lib.syscall(static_cast<int64_t>(Syscall::Open));
    lib.ret();
    lib.function("sys_close");
    lib.syscall(static_cast<int64_t>(Syscall::Close));
    lib.ret();
    lib.function("sys_exit");
    lib.syscall(static_cast<int64_t>(Syscall::Exit));
    lib.ret();
    lib.function("sys_mprotect");
    lib.syscall(static_cast<int64_t>(Syscall::Mprotect));
    lib.ret();

    // gettimeofday(): the syscall fallback. When a VDSO is loaded its
    // export interposes on this one (§4.1 VDSO precedence).
    lib.function("gettimeofday");
    lib.syscall(static_cast<int64_t>(Syscall::Gettimeofday));
    lib.ret();

    // malloc(nbytes=r0) -> r0: bump allocator over a lazily mmap'd
    // arena. State: [cursor] in the data segment.
    lib.dataBss("malloc_state", 16, /*exported=*/false);
    lib.function("malloc");
    lib.movImmData(6, "malloc_state");
    lib.load(7, 6, 0);              // cursor
    lib.cmpImm(7, 0);
    lib.jcc(Cond::Ne, "m_have");
    lib.movReg(8, 0);               // save n
    lib.movImm(0, 1 << 20);
    lib.syscall(static_cast<int64_t>(Syscall::Mmap));
    lib.movReg(7, 0);               // arena base
    lib.movReg(0, 8);               // restore n
    lib.label("m_have");
    lib.aluImm(AluOp::Add, 0, 7);   // round n up to 8
    lib.aluImm(AluOp::And, 0, -8);
    lib.movReg(9, 7);               // result = old cursor
    lib.alu(AluOp::Add, 7, 0);
    lib.store(6, 0, 7);             // store new cursor
    lib.movReg(0, 9);
    lib.ret();

    // sigaction_install(sig=r0, handler=r1): registers the handler
    // and, like glibc, passes the restorer trampoline along.
    lib.function("sigaction_install");
    lib.syscall(static_cast<int64_t>(Syscall::Sigaction));
    lib.ret();

    // The sigreturn trampoline (glibc's __restore_rt). Its address is
    // taken via the signal machinery, making it reachable gadget
    // material for SROP.
    lib.dataObject("restore_rt_ref", std::vector<uint8_t>(8, 0),
                   {{0, "restore_rt", false}}, /*exported=*/false);
    lib.function("restore_rt");
    lib.syscall(static_cast<int64_t>(Syscall::Sigreturn));
    lib.ret();

    // ctx_restore(): longjmp-style context restore. Its epilogue is
    // the canonical "pop r2; pop r1; pop r0; ret" gadget chain.
    lib.function("ctx_restore");
    lib.load(2, sp_reg, 0);
    lib.aluImm(AluOp::Add, sp_reg, 8);
    lib.load(1, sp_reg, 0);
    lib.aluImm(AluOp::Add, sp_reg, 8);
    lib.load(0, sp_reg, 0);
    lib.aluImm(AluOp::Add, sp_reg, 8);
    lib.ret();

    return lib.build();
}

Module
buildVdso()
{
    ModuleBuilder vdso("vdso", ModuleKind::Vdso);
    vdso.dataBss("vvar_time", 8, /*exported=*/false);
    vdso.function("gettimeofday");
    vdso.movImmData(6, "vvar_time");
    vdso.load(0, 6, 0);
    vdso.aluImm(AluOp::Add, 0, 1);
    vdso.store(6, 0, 0);
    vdso.ret();
    return vdso.build();
}

} // namespace flowguard::workloads
