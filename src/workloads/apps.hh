/**
 * @file
 * Synthetic application factory.
 *
 * The paper evaluates on nginx/vsftpd/openssh/exim, four Linux
 * utilities and the SPEC CPU2006 C suite — none of which exist in
 * this environment. These generators produce programs with the same
 * *shape*: servers are request loops with indirect handler dispatch,
 * a jump-table parser state machine, PLT calls into the shared libc,
 * optionally an implanted stack-overflow vulnerability; utilities are
 * short one-shot pipelines; SPEC-like kernels are CPU-bound loop
 * nests whose branch/indirect densities are tuned per benchmark
 * (including the h264ref-like indirect-call-heavy outlier).
 *
 * Everything is parameterized and seeded, so Table 4-scale CFGs and
 * Figure 5-shape overheads are reproducible deterministically.
 */

#ifndef FLOWGUARD_WORKLOADS_APPS_HH
#define FLOWGUARD_WORKLOADS_APPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/basic_kernel.hh"
#include "cpu/cpu.hh"
#include "isa/loader.hh"
#include "isa/program.hh"

namespace flowguard::workloads {

/** Fixed wire size of one server request (see makeRequest). */
constexpr size_t request_size = 256;

/** Words of local buffer in the vulnerable handler before the saved
 *  return address (the overflow reaches the return address after
 *  this many payload words). */
constexpr size_t vuln_buffer_words = 3;

/** Magic word gating the implanted debug-command write primitive in
 *  handler 1 of vulnerable servers (the data-only COOP vector). */
constexpr int64_t vuln_debug_magic = 0x0DDC0FFEE0DDC0FFLL;

struct ServerSpec
{
    std::string name = "nginx";
    size_t numHandlers = 8;         ///< indirect dispatch fan-out
    size_t numParserStates = 4;     ///< jump-table state machine
    size_t numFillerFuncs = 96;     ///< CFG bulk in the executable
    size_t fillerTableSlots = 24;   ///< address-taken filler subset
    size_t workPerRequest = 24;     ///< handler inner-loop iterations
    bool implantVuln = false;       ///< handler 0 uses strcpy_w
    uint64_t seed = 1;
    uint64_t cr3 = 0x1000;
    /** Address-space layout (fixed by default; ASLR when
     *  randomized). */
    isa::LayoutPolicy layout;
};

/** Command byte of the plugin server's non-plugin local handler. */
constexpr uint8_t plugin_cmd_local = 0xF0;
/** Command byte of the implanted vulnerable handler (implantVuln). */
constexpr uint8_t plugin_cmd_vuln = 0xFE;

/**
 * A server whose request handlers live in dynamically loaded plugin
 * modules: each plugin command dlopens the plugin, dispatches
 * indirectly into one of its exported handlers (which call back into
 * libc through the PLT — the cross-module edges the dynamic guard
 * must stitch at event time), and dlcloses it again. The dynamic-code
 * churn workload for src/dynamic.
 */
struct PluginServerSpec
{
    std::string name = "plugsrv";
    size_t numPlugins = 2;          ///< SharedLib plugin modules
    size_t handlersPerPlugin = 2;   ///< exported plug<k>_h<j> entries
    size_t workPerCall = 16;        ///< plugin handler loop length
    size_t numFillerFuncs = 24;     ///< CFG bulk in the executable
    bool implantVuln = false;       ///< 0xFE command uses strcpy_w
    uint64_t seed = 7;
    uint64_t cr3 = 0x5000;
    isa::LayoutPolicy layout;
};

enum class UtilityKind { Tar, Dd, Make, Scp };

struct UtilitySpec
{
    std::string name = "tar";
    UtilityKind kind = UtilityKind::Tar;
    size_t records = 64;
    uint64_t seed = 2;
    uint64_t cr3 = 0x2000;
};

struct SpecKernelSpec
{
    std::string name;
    uint64_t iterations = 2000;
    size_t aluPerIter = 16;
    size_t branchesPerIter = 4;     ///< data-dependent conditionals
    size_t indirectPerIter = 0;     ///< indirect calls per iteration
    size_t helperFuncs = 4;         ///< direct-called helpers
    size_t loadsPerIter = 4;
    uint64_t seed = 3;
    uint64_t cr3 = 0x3000;
};

/** A generated application: the program plus driving metadata. */
struct SyntheticApp
{
    std::string name;
    isa::Program program;
    /** Module indices that come and go at runtime (plugins); feed
     *  these to FlowGuardConfig::dynamicModules. */
    std::vector<uint32_t> dynamicModules;
};

SyntheticApp buildServerApp(const ServerSpec &spec);
SyntheticApp buildPluginServerApp(const PluginServerSpec &spec);
SyntheticApp buildUtilityApp(const UtilitySpec &spec);
SyntheticApp buildSpecKernel(const SpecKernelSpec &spec);

/** The paper's four servers, sized apart (Table 4). Vulnerable nginx
 *  when `implant_vuln`. */
std::vector<ServerSpec> serverSuite(bool implant_vuln = false);

/** tar / dd / make / scp analogues (Figure 5b). */
std::vector<UtilitySpec> utilitySuite();

/** The 12 SPEC CPU2006 C benchmarks' analogues (Figure 5c). */
std::vector<SpecKernelSpec> specSuite();

/** Builds one well-formed request: type byte, parser-state byte,
 *  then payload words (zero-padded, zero-terminated). */
std::vector<uint8_t> makeRequest(uint8_t handler, uint8_t state,
                                 const std::vector<uint64_t> &payload);

/** Concatenates several benign requests into an input stream. */
std::vector<uint8_t> makeBenignStream(size_t requests, uint64_t seed,
                                      size_t num_handlers,
                                      size_t num_states);

/** One plugin-server request: command byte, handler byte, payload
 *  words from offset 8 (zero-padded, zero-terminated). */
std::vector<uint8_t> makePluginRequest(
    uint8_t cmd, uint8_t handler,
    const std::vector<uint64_t> &payload);

/** Benign plugin-churn stream: seeded mix of plugin commands (each
 *  one a dlopen / dispatch / dlclose cycle) and local commands. */
std::vector<uint8_t> makePluginStream(size_t requests, uint64_t seed,
                                      const PluginServerSpec &spec);

/** Outcome of one driven execution. */
struct RunResult
{
    cpu::Cpu::Stop stop = cpu::Cpu::Stop::Halted;
    uint64_t instructions = 0;
    uint64_t syscalls = 0;
};

/**
 * Runs a program to completion on `input` under a BasicKernel, with
 * an optional TraceSink attached — the standard harness for fuzzing
 * and for unprotected baselines.
 */
RunResult runOnce(const isa::Program &program,
                  const std::vector<uint8_t> &input,
                  cpu::TraceSink *sink = nullptr,
                  uint64_t max_insts = 20'000'000);

} // namespace flowguard::workloads

#endif // FLOWGUARD_WORKLOADS_APPS_HH
