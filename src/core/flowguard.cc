#include "core/flowguard.hh"

#include <chrono>

#include "cpu/basic_kernel.hh"
#include "fuzz/trainer.hh"
#include "support/logging.hh"
#include "trace/ipt.hh"

namespace flowguard {

FlowGuard::FlowGuard(const isa::Program &program, FlowGuardConfig config)
    : _program(program), _config(std::move(config))
{}

FlowGuard::~FlowGuard() = default;

void
FlowGuard::analyze()
{
    if (analyzed())
        return;
    const auto start = std::chrono::steady_clock::now();
    _typearmor = std::make_unique<analysis::TypeArmorInfo>(
        analysis::analyzeTypeArmor(_program));
    _ocfg = std::make_unique<analysis::Cfg>(analysis::buildCfg(
        _program, _typearmor.get(), _config.cfgOptions));
    _itc = std::make_unique<analysis::ItcCfg>(
        analysis::ItcCfg::build(*_ocfg));
    if (_config.pathSensitive)
        _paths = std::make_unique<analysis::PathIndex>(
            _config.pathLength);
    const auto end = std::chrono::steady_clock::now();
    _analyzeSeconds =
        std::chrono::duration<double>(end - start).count();
}

fuzz::RunTarget
FlowGuard::defaultRunner() const
{
    const isa::Program *program = &_program;
    const uint64_t max_insts = _config.fuzzRunMaxInsts;
    return [program, max_insts](const fuzz::Input &input,
                                cpu::TraceSink *sink) {
        cpu::Cpu cpu(*program);
        cpu::BasicKernel kernel;
        kernel.setInput(input);
        cpu.setSyscallHandler(&kernel);
        if (sink)
            cpu.addTraceSink(sink);
        cpu.run(max_insts);   // crashes/limits are fine while fuzzing
    };
}

void
FlowGuard::train(uint64_t budget, std::vector<fuzz::Input> seeds)
{
    analyze();
    if (!_fuzzer)
        _fuzzer = std::make_unique<fuzz::Fuzzer>(defaultRunner(),
                                                 _config.fuzzSeed);
    for (auto &seed : seeds)
        _fuzzer->addSeed(std::move(seed));
    _fuzzer->run(budget);
    trainWithCorpus(_fuzzer->corpus());
}

void
FlowGuard::trainWithCorpus(const std::vector<fuzz::Input> &corpus)
{
    analyze();
    fuzz::trainItcCfg(*_itc, defaultRunner(), corpus, _paths.get());
}

const analysis::Cfg &
FlowGuard::ocfg() const
{
    fg_assert(_ocfg, "call analyze() first");
    return *_ocfg;
}

analysis::ItcCfg &
FlowGuard::itc()
{
    fg_assert(_itc, "call analyze() first");
    return *_itc;
}

const analysis::ItcCfg &
FlowGuard::itc() const
{
    fg_assert(_itc, "call analyze() first");
    return *_itc;
}

const analysis::TypeArmorInfo &
FlowGuard::typearmor() const
{
    fg_assert(_typearmor, "call analyze() first");
    return *_typearmor;
}

analysis::AiaReport
FlowGuard::aia() const
{
    return analysis::computeAia(ocfg(), itc());
}

analysis::CfgStats
FlowGuard::cfgStats() const
{
    return analysis::computeCfgStats(ocfg(), itc());
}

FlowGuard::RunOutcome
FlowGuard::run(const std::vector<uint8_t> &input, uint64_t max_insts)
{
    analyze();
    RunOutcome outcome;

    // Run-local observability: unless configured off, every run has a
    // hub, so violation reports carry flight-recorder snapshots even
    // when nobody asked for a trace. An external hub (the caller's
    // sink and registry) takes precedence over the local null-sink
    // one; either way the clock is this run's simulated cycle count
    // (application cycles plus modeled checking overhead).
    telemetry::Telemetry local_hub;
    telemetry::Telemetry *hub = nullptr;
    if (!_config.telemetryOff)
        hub = _config.telemetry ? _config.telemetry : &local_hub;

    cpu::Cpu cpu(_program);

    trace::Topa topa(_config.topaRegions);
    topa.setPmiServiceLatency(_config.pmiServiceLatencyBytes);
    trace::IptConfig ipt_config;
    ipt_config.cr3Filter = true;
    ipt_config.cr3Match = _program.cr3();
    ipt_config.psbPeriodBytes = _config.psbPeriodBytes;
    trace::IptEncoder encoder(ipt_config, topa, &outcome.cycles);
    cpu.addTraceSink(&encoder);

    runtime::MonitorConfig monitor_config;
    monitor_config.fastPath = _config.fastPath;
    monitor_config.cacheSlowPathVerdicts =
        _config.cacheSlowPathVerdicts;
    monitor_config.lossPolicy = _config.lossPolicy;
    runtime::Monitor monitor(_program, *_itc, *_ocfg, *_typearmor,
                             monitor_config, &outcome.cycles,
                             _paths.get());

    runtime::FlowGuardKernel::Config kernel_config;
    kernel_config.endpoints = _config.endpoints;
    kernel_config.protectedCr3s = {_program.cr3()};
    runtime::FlowGuardKernel kernel(kernel_config);
    kernel.attachProcess(_program.cr3(), monitor, encoder, topa,
                         &outcome.cycles);
    kernel.setInput(input);
    cpu.setSyscallHandler(&kernel);

    std::unique_ptr<runtime::PmiGuard> pmi;
    if (_config.pmiChecking) {
        pmi = std::make_unique<runtime::PmiGuard>(
            monitor, encoder, topa, &outcome.cycles);
        kernel.attachPmi(*pmi);
    }

    std::unique_ptr<dynamic::DynamicGuard> dyn;
    if (_config.dynamicTracking || !_config.dynamicModules.empty()) {
        dyn = std::make_unique<dynamic::DynamicGuard>(
            _program, *_itc, _config.jitPolicy);
        dyn->startUnloaded(_config.dynamicModules);
        monitor.attachDynamic(*dyn);
        kernel.addCodeEventSink(dyn.get());
    }

    if (hub) {
        hub->setClock([&cpu, &outcome] {
            return static_cast<uint64_t>(
                static_cast<double>(cpu.instCount()) *
                    cpu::cost::app_cpi +
                outcome.cycles.overheadTotal());
        });
        monitor.setTelemetry(hub, _program.cr3());
        encoder.setTelemetry(hub, _program.cr3());
        kernel.attachTelemetry(hub);
        if (pmi)
            pmi->setTelemetry(hub, _program.cr3());
    }

    outcome.stop = cpu.run(max_insts);
    outcome.exitCode = cpu.exitCode();
    outcome.attackDetected = kernel.kills() > 0;
    outcome.violations = kernel.violations();
    if (pmi && pmi->violationPending()) {
        // The process stopped before the kernel could deliver the
        // PMI-triggered kill; still a positive detection.
        outcome.attackDetected = true;
        runtime::ViolationReport report;
        if (pmi->violationWasLoss()) {
            report.kind = runtime::ViolationReport::Kind::TraceLoss;
            report.reason =
                "PMI window: trace loss (fail-closed, post-mortem)";
        } else {
            report.reason =
                "PMI window: ITC-CFG violation (post-mortem)";
        }
        outcome.violations.push_back(std::move(report));
    }
    outcome.monitor = monitor.stats();
    outcome.instructions = cpu.instCount();
    outcome.syscalls = kernel.totalSyscalls();
    outcome.output = kernel.output();
    outcome.trace = encoder.stats();
    outcome.overflowEpisodes = topa.overflowEpisodes();
    outcome.droppedTraceBytes = topa.droppedBytes();
    if (dyn)
        outcome.dynamicStats = dyn->stats();
    outcome.verdicts = monitor.verdictLog();
    outcome.auditReports = kernel.auditReports();
    outcome.cycles.app = static_cast<double>(cpu.instCount()) *
                         cpu::cost::app_cpi;
    return outcome;
}

std::unique_ptr<FlowGuard::ProcessHarness>
FlowGuard::makeProcessHarness(const isa::Program &program)
{
    analyze();
    auto harness = std::make_unique<ProcessHarness>();
    harness->cpu = std::make_unique<cpu::Cpu>(program);
    harness->topa = std::make_unique<trace::Topa>(_config.topaRegions);
    harness->topa->setPmiServiceLatency(
        _config.pmiServiceLatencyBytes);

    trace::IptConfig ipt_config;
    ipt_config.cr3Filter = true;
    ipt_config.cr3Match = program.cr3();
    ipt_config.psbPeriodBytes = _config.psbPeriodBytes;
    harness->encoder = std::make_unique<trace::IptEncoder>(
        ipt_config, *harness->topa, &harness->cycles);
    harness->cpu->addTraceSink(harness->encoder.get());

    runtime::MonitorConfig monitor_config;
    monitor_config.fastPath = _config.fastPath;
    monitor_config.cacheSlowPathVerdicts =
        _config.cacheSlowPathVerdicts;
    monitor_config.lossPolicy = _config.lossPolicy;
    monitor_config.autoCommitCache = false;
    // With dynamic tracking on, the harness checks against a private
    // copy of the trained graph: load/unload events flip liveness and
    // runtime credit, and that state is per-process — sharing it
    // would let one process's dlclose convict a peer whose copy of
    // the module is still live.
    analysis::ItcCfg *graph = _itc.get();
    const bool dynamic_on =
        _config.dynamicTracking || !_config.dynamicModules.empty();
    if (dynamic_on) {
        harness->itc = std::make_unique<analysis::ItcCfg>(*_itc);
        graph = harness->itc.get();
    }
    harness->monitor = std::make_unique<runtime::Monitor>(
        program, *graph, *_ocfg, *_typearmor, monitor_config,
        &harness->cycles, _paths.get());
    if (dynamic_on) {
        harness->dyn = std::make_unique<dynamic::DynamicGuard>(
            program, *harness->itc, _config.jitPolicy);
        harness->dyn->startUnloaded(_config.dynamicModules);
        harness->monitor->attachDynamic(*harness->dyn);
    }
    // Service harnesses only wire an external hub: the service layer
    // owns the clock (scheduler virtual time), and a run-local hub
    // would die with this function's caller anyway.
    if (_config.telemetry && !_config.telemetryOff) {
        harness->monitor->setTelemetry(_config.telemetry,
                                       program.cr3());
        harness->encoder->setTelemetry(_config.telemetry,
                                       program.cr3());
    }
    return harness;
}

FlowGuard::RunOutcome
FlowGuard::runUnprotected(const std::vector<uint8_t> &input,
                          uint64_t max_insts) const
{
    RunOutcome outcome;
    cpu::Cpu cpu(_program);
    cpu::BasicKernel kernel;
    kernel.setInput(input);
    cpu.setSyscallHandler(&kernel);
    outcome.stop = cpu.run(max_insts);
    outcome.exitCode = cpu.exitCode();
    outcome.instructions = cpu.instCount();
    outcome.syscalls = kernel.totalSyscalls();
    outcome.output = kernel.output();
    outcome.cycles.app = static_cast<double>(cpu.instCount()) *
                         cpu::cost::app_cpi;
    return outcome;
}

} // namespace flowguard
