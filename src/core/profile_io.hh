/**
 * @file
 * Profile serialization.
 *
 * §3.3: "before the distribution of the protected software, the
 * static CFG generation and dynamic training are securely conducted"
 * — i.e., the trained artifact ships with the program and the
 * deployment machine only loads it. A profile stores the training
 * annotations (edge credits, TNT sequences, path hashes) keyed by
 * fingerprints of the code; loading re-runs the cheap static pipeline
 * and replays the annotations, refusing mismatched binaries.
 *
 * Two on-disk formats:
 *  - v2 (legacy): one whole-program section keyed by a global
 *    program fingerprint and the exact ITC-CFG shape. Any module
 *    changing invalidates the entire profile.
 *  - v3: per-module sections. Each module's training data is keyed
 *    by its relocation-invariant fingerprint and its edges are
 *    stored module-relative, so one updated library only skips its
 *    own section (and the cross-module edges touching it) while the
 *    rest of the profile still applies — and the profile is valid
 *    under any ASLR layout.
 *
 * Loading is recoverable: tryLoadProfile() reports what happened in
 * a ProfileLoadResult instead of aborting, so a deployment can fall
 * back to retraining. loadProfile() keeps the historical fatal
 * behavior on top of it.
 */

#ifndef FLOWGUARD_CORE_PROFILE_IO_HH
#define FLOWGUARD_CORE_PROFILE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/flowguard.hh"

namespace flowguard {

/** Stable hash over the program's code (addresses + operands). */
uint64_t programFingerprint(const isa::Program &program);

/** What a profile load did — recoverable, never fatal. */
struct ProfileLoadResult
{
    enum class Status : uint8_t {
        Ok,
        IoError,                ///< stream unreadable / file missing
        BadMagic,               ///< not a FlowGuard profile
        BadVersion,             ///< version this build cannot read
        FingerprintMismatch,    ///< v2: different program
        ShapeMismatch,          ///< v2: ITC-CFG shape differs
        Truncated,              ///< stream ended mid-record
        ModuleMismatch,         ///< v3: no module section applied
        /** A CRC-framed structure (recovery snapshot) failed its
         *  checksum: bytes are present but cannot be trusted. */
        BadChecksum,
    };

    Status status = Status::Ok;
    /** Human-readable detail for non-Ok statuses. */
    std::string message;
    /** Format version encountered (0 when unreadable). */
    uint32_t version = 0;
    size_t modulesLoaded = 0;   ///< v3 sections applied
    size_t modulesSkipped = 0;  ///< v3 sections refused (fingerprint)
    size_t edgesApplied = 0;    ///< annotations replayed onto edges
    size_t edgesMissed = 0;     ///< annotations with no current edge

    bool ok() const { return status == Status::Ok; }
};

const char *profileStatusName(ProfileLoadResult::Status status);

/** Writes the guard's training state (v3 format). Requires
 *  analyze(). The path overloads land atomically (temp + rename):
 *  a save that dies mid-write never leaves a torn file under the
 *  final name. */
void saveProfile(const FlowGuard &guard, std::ostream &out);
void saveProfile(const FlowGuard &guard, const std::string &path);

/** Legacy whole-program writer (v2), kept so old tooling and the
 *  version-compatibility tests have a producer. */
void saveProfileV2(const FlowGuard &guard, std::ostream &out);
void saveProfileV2(const FlowGuard &guard, const std::string &path);

/**
 * Loads training state into `guard` (analyze() is run if needed),
 * accepting both v2 and v3 profiles. Never aborts: every failure
 * mode comes back as a ProfileLoadResult.
 */
ProfileLoadResult tryLoadProfile(FlowGuard &guard, std::istream &in);
ProfileLoadResult tryLoadProfile(FlowGuard &guard,
                                 const std::string &path);

/**
 * Historical strict API: tryLoadProfile, but any non-Ok outcome is
 * fatal.
 */
void loadProfile(FlowGuard &guard, std::istream &in);
void loadProfile(FlowGuard &guard, const std::string &path);

} // namespace flowguard

#endif // FLOWGUARD_CORE_PROFILE_IO_HH
