/**
 * @file
 * Profile serialization.
 *
 * §3.3: "before the distribution of the protected software, the
 * static CFG generation and dynamic training are securely conducted"
 * — i.e., the trained artifact ships with the program and the
 * deployment machine only loads it. A profile stores the training
 * annotations (edge credits, TNT sequences, path hashes) keyed by a
 * fingerprint of the program and of the deterministically
 * reconstructed ITC-CFG; loading re-runs the cheap static pipeline
 * and replays the annotations, refusing mismatched binaries.
 */

#ifndef FLOWGUARD_CORE_PROFILE_IO_HH
#define FLOWGUARD_CORE_PROFILE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/flowguard.hh"

namespace flowguard {

/** Stable hash over the program's code (addresses + operands). */
uint64_t programFingerprint(const isa::Program &program);

/** Writes the guard's training state. Requires analyze(). */
void saveProfile(const FlowGuard &guard, std::ostream &out);
void saveProfile(const FlowGuard &guard, const std::string &path);

/**
 * Loads training state into `guard` (analyze() is run if needed).
 * Fatal if the profile belongs to a different program or if the
 * reconstructed ITC-CFG shape differs.
 */
void loadProfile(FlowGuard &guard, std::istream &in);
void loadProfile(FlowGuard &guard, const std::string &path);

} // namespace flowguard

#endif // FLOWGUARD_CORE_PROFILE_IO_HH
