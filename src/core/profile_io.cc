#include "core/profile_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

#include "support/logging.hh"
#include "support/random.hh"

namespace flowguard {

namespace {

constexpr uint32_t profile_magic = 0x46475046;   // "FGPF"
constexpr uint32_t profile_version = 2;

void
write64(std::ostream &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.put(static_cast<char>(value >> (8 * i)));
}

uint64_t
read64(std::istream &in)
{
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        const int byte = in.get();
        if (byte < 0)
            fg_fatal("truncated FlowGuard profile");
        value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    return value;
}

/** Mixes a value into a running hash. */
void
mix(uint64_t &state, uint64_t value)
{
    state ^= value;
    state = splitmix64(state);
}

} // namespace

uint64_t
programFingerprint(const isa::Program &program)
{
    uint64_t state = 0xF10460A4DF10460AULL;
    mix(state, program.numInsts());
    for (size_t i = 0; i < program.numInsts(); ++i) {
        const isa::Instruction &inst = program.inst(i);
        mix(state, program.instAddr(i));
        mix(state, static_cast<uint64_t>(inst.op));
        mix(state,
            (static_cast<uint64_t>(inst.rd) << 32) | inst.rs);
        mix(state, static_cast<uint64_t>(inst.imm));
        mix(state, inst.target);
    }
    return state;
}

void
saveProfile(const FlowGuard &guard, std::ostream &out)
{
    fg_assert(guard.analyzed(), "analyze() before saving a profile");
    const analysis::ItcCfg &itc = guard.itc();

    write64(out, profile_magic);
    write64(out, profile_version);
    write64(out, programFingerprint(guard.program()));
    write64(out, itc.numNodes());
    write64(out, itc.numEdges());

    // Credits as a packed bitset.
    for (size_t e = 0; e < itc.numEdges(); e += 64) {
        uint64_t word = 0;
        for (size_t b = 0; b < 64 && e + b < itc.numEdges(); ++b) {
            if (itc.highCredit(static_cast<int64_t>(e + b)))
                word |= 1ULL << b;
        }
        write64(out, word);
    }

    // TNT annotations: per edge, varied flag + sequence list.
    for (size_t e = 0; e < itc.numEdges(); ++e) {
        const int64_t edge = static_cast<int64_t>(e);
        write64(out, itc.tntVaried(edge) ? 1 : 0);
        const auto &seqs = itc.tntSequences(edge);
        write64(out, seqs.size());
        for (const auto &seq : seqs) {
            write64(out, seq.size());
            for (uint8_t bit : seq)
                out.put(static_cast<char>(bit));
        }
    }

    // Path index.
    const analysis::PathIndex *paths = guard.paths();
    write64(out, paths ? paths->length() : 0);
    write64(out, paths ? paths->hashes().size() : 0);
    if (paths)
        for (uint64_t hash : paths->hashes())
            write64(out, hash);
}

void
saveProfile(const FlowGuard &guard, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fg_fatal("cannot write profile to ", path);
    saveProfile(guard, out);
}

void
loadProfile(FlowGuard &guard, std::istream &in)
{
    guard.analyze();
    analysis::ItcCfg &itc = guard.itc();

    if (read64(in) != profile_magic)
        fg_fatal("not a FlowGuard profile");
    if (read64(in) != profile_version)
        fg_fatal("unsupported FlowGuard profile version");
    if (read64(in) != programFingerprint(guard.program()))
        fg_fatal("profile belongs to a different program");
    if (read64(in) != itc.numNodes() ||
        read64(in) != itc.numEdges())
        fg_fatal("profile ITC-CFG shape mismatch");

    for (size_t e = 0; e < itc.numEdges(); e += 64) {
        const uint64_t word = read64(in);
        for (size_t b = 0; b < 64 && e + b < itc.numEdges(); ++b) {
            if ((word >> b) & 1)
                itc.setHighCredit(static_cast<int64_t>(e + b));
        }
    }

    for (size_t e = 0; e < itc.numEdges(); ++e) {
        const int64_t edge = static_cast<int64_t>(e);
        const bool varied = read64(in) != 0;
        const uint64_t num_seqs = read64(in);
        for (uint64_t s = 0; s < num_seqs; ++s) {
            const uint64_t len = read64(in);
            analysis::TntSequence seq;
            seq.reserve(len);
            for (uint64_t k = 0; k < len; ++k) {
                const int byte = in.get();
                if (byte < 0)
                    fg_fatal("truncated FlowGuard profile");
                seq.push_back(static_cast<uint8_t>(byte));
            }
            itc.addTntSequence(edge, seq);
        }
        if (varied)
            itc.markTntVaried(edge);
    }

    const uint64_t path_length = read64(in);
    const uint64_t path_count = read64(in);
    analysis::PathIndex *paths = guard.mutablePaths();
    for (uint64_t i = 0; i < path_count; ++i) {
        const uint64_t hash = read64(in);
        if (paths && paths->length() == path_length)
            paths->insertHash(hash);
    }
}

void
loadProfile(FlowGuard &guard, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fg_fatal("cannot read profile from ", path);
    loadProfile(guard, in);
}

} // namespace flowguard
