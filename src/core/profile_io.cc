#include "core/profile_io.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/profile_wire.hh"
#include "support/fsio.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace flowguard {

namespace {

using wire::Reader;
using wire::write64;
using wire::writeString;

constexpr uint32_t profile_magic = 0x46475046;   // "FGPF"
constexpr uint32_t profile_version_v2 = 2;
constexpr uint32_t profile_version_v3 = 3;

/** v3 edge-endpoint sentinel: the address is absolute, not
 *  module-relative (an endpoint outside every module's code range). */
constexpr uint64_t module_absolute = ~0ULL;

/** Renders via the stream writer, then lands atomically: the final
 *  path never holds a torn profile, whatever kills the writer. */
template <typename SaveFn>
void
saveAtomically(const SaveFn &save, const FlowGuard &guard,
               const std::string &path)
{
    std::ostringstream out(std::ios::binary);
    save(guard, out);
    if (!writeFileAtomic(path, out.str()))
        fg_fatal("cannot write profile to ", path);
}

/** Mixes a value into a running hash. */
void
mix(uint64_t &state, uint64_t value)
{
    state ^= value;
    state = splitmix64(state);
}

/** One edge's training annotations, as serialized in v3. */
struct EdgeRecord
{
    uint64_t fromModule = module_absolute;
    uint64_t fromOff = 0;
    uint64_t toModule = module_absolute;
    uint64_t toOff = 0;
    bool credit = false;
    bool varied = false;
    std::vector<analysis::TntSequence> seqs;
};

void
writeEdgeRecord(std::ostream &out, const EdgeRecord &record)
{
    write64(out, record.fromModule);
    write64(out, record.fromOff);
    write64(out, record.toModule);
    write64(out, record.toOff);
    write64(out, record.credit ? 1 : 0);
    write64(out, record.varied ? 1 : 0);
    write64(out, record.seqs.size());
    for (const auto &seq : record.seqs) {
        write64(out, seq.size());
        for (uint8_t bit : seq)
            out.put(static_cast<char>(bit));
    }
}

bool
readEdgeRecord(Reader &r, EdgeRecord &record)
{
    record.fromModule = r.u64();
    record.fromOff = r.u64();
    record.toModule = r.u64();
    record.toOff = r.u64();
    record.credit = r.u64() != 0;
    record.varied = r.u64() != 0;
    const uint64_t num_seqs = r.u64();
    if (r.truncated || num_seqs > (1ULL << 20))
        return false;
    record.seqs.clear();
    for (uint64_t s = 0; s < num_seqs; ++s) {
        const uint64_t len = r.u64();
        if (r.truncated || len > (1ULL << 20))
            return false;
        analysis::TntSequence seq;
        seq.reserve(len);
        for (uint64_t k = 0; k < len; ++k)
            seq.push_back(r.u8());
        record.seqs.push_back(std::move(seq));
    }
    return !r.truncated;
}

/** Index of the module whose code range holds `addr`, or
 *  module_absolute. */
uint64_t
moduleContaining(const std::vector<isa::LoadedModule> &mods,
                 uint64_t addr)
{
    for (size_t m = 0; m < mods.size(); ++m) {
        if (addr >= mods[m].codeBase && addr < mods[m].codeEnd)
            return m;
    }
    return module_absolute;
}

void
writePathSection(const FlowGuard &guard, std::ostream &out)
{
    const analysis::PathIndex *paths = guard.paths();
    write64(out, paths ? paths->length() : 0);
    write64(out, paths ? paths->hashes().size() : 0);
    if (paths)
        for (uint64_t hash : paths->hashes())
            write64(out, hash);
}

void
readPathSection(FlowGuard &guard, Reader &r)
{
    const uint64_t path_length = r.u64();
    const uint64_t path_count = r.u64();
    if (r.truncated)
        return;
    analysis::PathIndex *paths = guard.mutablePaths();
    for (uint64_t i = 0; i < path_count; ++i) {
        const uint64_t hash = r.u64();
        if (r.truncated)
            return;
        if (paths && paths->length() == path_length)
            paths->insertHash(hash);
    }
}

ProfileLoadResult
failWith(ProfileLoadResult result, ProfileLoadResult::Status status,
         std::string message)
{
    result.status = status;
    result.message = std::move(message);
    return result;
}

ProfileLoadResult loadProfileV2(FlowGuard &guard, Reader &r,
                                ProfileLoadResult result);
ProfileLoadResult loadProfileV3(FlowGuard &guard, Reader &r,
                                ProfileLoadResult result);

} // namespace

const char *
profileStatusName(ProfileLoadResult::Status status)
{
    using Status = ProfileLoadResult::Status;
    switch (status) {
      case Status::Ok: return "ok";
      case Status::IoError: return "io-error";
      case Status::BadMagic: return "bad-magic";
      case Status::BadVersion: return "bad-version";
      case Status::FingerprintMismatch: return "fingerprint-mismatch";
      case Status::ShapeMismatch: return "shape-mismatch";
      case Status::Truncated: return "truncated";
      case Status::ModuleMismatch: return "module-mismatch";
      case Status::BadChecksum: return "bad-checksum";
    }
    return "?";
}

uint64_t
programFingerprint(const isa::Program &program)
{
    uint64_t state = 0xF10460A4DF10460AULL;
    mix(state, program.numInsts());
    for (size_t i = 0; i < program.numInsts(); ++i) {
        const isa::Instruction &inst = program.inst(i);
        mix(state, program.instAddr(i));
        mix(state, static_cast<uint64_t>(inst.op));
        mix(state,
            (static_cast<uint64_t>(inst.rd) << 32) | inst.rs);
        mix(state, static_cast<uint64_t>(inst.imm));
        mix(state, inst.target);
    }
    return state;
}

void
saveProfileV2(const FlowGuard &guard, std::ostream &out)
{
    fg_assert(guard.analyzed(), "analyze() before saving a profile");
    const analysis::ItcCfg &itc = guard.itc();

    write64(out, profile_magic);
    write64(out, profile_version_v2);
    write64(out, programFingerprint(guard.program()));
    write64(out, itc.numNodes());
    write64(out, itc.numEdges());

    // Credits as a packed bitset.
    for (size_t e = 0; e < itc.numEdges(); e += 64) {
        uint64_t word = 0;
        for (size_t b = 0; b < 64 && e + b < itc.numEdges(); ++b) {
            if (itc.highCredit(static_cast<int64_t>(e + b)))
                word |= 1ULL << b;
        }
        write64(out, word);
    }

    // TNT annotations: per edge, varied flag + sequence list.
    for (size_t e = 0; e < itc.numEdges(); ++e) {
        const int64_t edge = static_cast<int64_t>(e);
        write64(out, itc.tntVaried(edge) ? 1 : 0);
        const auto &seqs = itc.tntSequences(edge);
        write64(out, seqs.size());
        for (const auto &seq : seqs) {
            write64(out, seq.size());
            for (uint8_t bit : seq)
                out.put(static_cast<char>(bit));
        }
    }

    writePathSection(guard, out);
}

void
saveProfileV2(const FlowGuard &guard, const std::string &path)
{
    saveAtomically(
        [](const FlowGuard &g, std::ostream &o) {
            saveProfileV2(g, o);
        },
        guard, path);
}

void
saveProfile(const FlowGuard &guard, std::ostream &out)
{
    fg_assert(guard.analyzed(), "analyze() before saving a profile");
    const analysis::ItcCfg &itc = guard.itc();
    const isa::Program &program = guard.program();
    const auto &mods = program.modules();

    // Group edge ids by the module owning the edge's source node.
    // CSR order: edge ids increase monotonically across nodes.
    std::vector<std::vector<EdgeRecord>> sections(mods.size());
    std::vector<EdgeRecord> orphans;
    size_t edge_id = 0;
    for (size_t node = 0; node < itc.numNodes(); ++node) {
        const uint64_t from = itc.nodeAddr(node);
        const uint64_t from_mod = moduleContaining(mods, from);
        for (const uint64_t *t = itc.targetsBegin(node);
             t != itc.targetsEnd(node); ++t, ++edge_id) {
            const int64_t edge = static_cast<int64_t>(edge_id);
            EdgeRecord record;
            record.fromModule = from_mod;
            record.fromOff = from_mod == module_absolute
                ? from
                : from - mods[from_mod].codeBase;
            const uint64_t to_mod = moduleContaining(mods, *t);
            record.toModule = to_mod;
            record.toOff = to_mod == module_absolute
                ? *t
                : *t - mods[to_mod].codeBase;
            record.credit = itc.highCredit(edge);
            record.varied = itc.tntVaried(edge);
            record.seqs = itc.tntSequences(edge);
            // Untrained edges carry no information; the loader
            // re-derives the graph from the binary anyway.
            if (!record.credit && !record.varied &&
                record.seqs.empty())
                continue;
            if (from_mod == module_absolute)
                orphans.push_back(std::move(record));
            else
                sections[from_mod].push_back(std::move(record));
        }
    }

    write64(out, profile_magic);
    write64(out, profile_version_v3);
    write64(out, mods.size());
    // Module table first, so cross-module edge references resolve
    // no matter which section they appear in.
    for (const auto &mod : mods) {
        writeString(out, mod.name);
        write64(out, mod.fingerprint);
    }
    for (const auto &section : sections) {
        write64(out, section.size());
        for (const auto &record : section)
            writeEdgeRecord(out, record);
    }
    write64(out, orphans.size());
    for (const auto &record : orphans)
        writeEdgeRecord(out, record);

    writePathSection(guard, out);
}

void
saveProfile(const FlowGuard &guard, const std::string &path)
{
    saveAtomically(
        [](const FlowGuard &g, std::ostream &o) {
            saveProfile(g, o);
        },
        guard, path);
}

namespace {

ProfileLoadResult
loadProfileV2(FlowGuard &guard, Reader &r, ProfileLoadResult result)
{
    analysis::ItcCfg &itc = guard.itc();

    if (r.u64() != programFingerprint(guard.program()))
        return failWith(std::move(result),
                        ProfileLoadResult::Status::FingerprintMismatch,
                        "profile belongs to a different program");
    const uint64_t nodes = r.u64();
    const uint64_t edges = r.u64();
    if (r.truncated)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::Truncated,
                        "truncated profile header");
    if (nodes != itc.numNodes() || edges != itc.numEdges())
        return failWith(std::move(result),
                        ProfileLoadResult::Status::ShapeMismatch,
                        "profile ITC-CFG shape mismatch");

    for (size_t e = 0; e < itc.numEdges(); e += 64) {
        const uint64_t word = r.u64();
        if (r.truncated)
            return failWith(std::move(result),
                            ProfileLoadResult::Status::Truncated,
                            "truncated credit bitset");
        for (size_t b = 0; b < 64 && e + b < itc.numEdges(); ++b) {
            if ((word >> b) & 1) {
                itc.setHighCredit(static_cast<int64_t>(e + b));
                ++result.edgesApplied;
            }
        }
    }

    for (size_t e = 0; e < itc.numEdges(); ++e) {
        const int64_t edge = static_cast<int64_t>(e);
        const bool varied = r.u64() != 0;
        const uint64_t num_seqs = r.u64();
        if (r.truncated || num_seqs > (1ULL << 20))
            return failWith(std::move(result),
                            ProfileLoadResult::Status::Truncated,
                            "truncated TNT annotations");
        for (uint64_t s = 0; s < num_seqs; ++s) {
            const uint64_t len = r.u64();
            if (r.truncated || len > (1ULL << 20))
                return failWith(std::move(result),
                                ProfileLoadResult::Status::Truncated,
                                "truncated TNT sequence");
            analysis::TntSequence seq;
            seq.reserve(len);
            for (uint64_t k = 0; k < len; ++k)
                seq.push_back(r.u8());
            itc.addTntSequence(edge, seq);
        }
        if (varied)
            itc.markTntVaried(edge);
    }

    readPathSection(guard, r);
    if (r.truncated)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::Truncated,
                        "truncated path section");
    result.modulesLoaded = guard.program().modules().size();
    return result;
}

ProfileLoadResult
loadProfileV3(FlowGuard &guard, Reader &r, ProfileLoadResult result)
{
    analysis::ItcCfg &itc = guard.itc();
    const auto &mods = guard.program().modules();

    const uint64_t num_profile_mods = r.u64();
    if (r.truncated || num_profile_mods > (1ULL << 16))
        return failWith(std::move(result),
                        ProfileLoadResult::Status::Truncated,
                        "truncated module table");

    // Map profile module index -> current module (matched by name,
    // accepted only when the relocation-invariant fingerprints
    // agree — a changed library silently invalidates only its own
    // section).
    std::vector<uint64_t> current_index(num_profile_mods,
                                        module_absolute);
    for (uint64_t m = 0; m < num_profile_mods; ++m) {
        const std::string name = r.str();
        const uint64_t fingerprint = r.u64();
        if (r.truncated)
            return failWith(std::move(result),
                            ProfileLoadResult::Status::Truncated,
                            "truncated module table");
        for (size_t c = 0; c < mods.size(); ++c) {
            if (mods[c].name == name &&
                mods[c].fingerprint == fingerprint) {
                current_index[m] = c;
                break;
            }
        }
    }

    // The executable's own section is non-negotiable: libraries may
    // individually mismatch (their sections are skipped), but a
    // profile whose executable fingerprint differs belongs to a
    // different program.
    for (size_t c = 0; c < mods.size(); ++c) {
        if (mods[c].kind != isa::ModuleKind::Executable)
            continue;
        bool exec_matched = false;
        for (uint64_t m = 0; m < num_profile_mods; ++m)
            exec_matched |= current_index[m] == c;
        if (!exec_matched)
            return failWith(std::move(result),
                            ProfileLoadResult::Status::ModuleMismatch,
                            "executable module '" + mods[c].name +
                                "' does not match the profile");
    }

    // Resolves a (module, offset) endpoint in the current layout.
    const auto resolve = [&](uint64_t module, uint64_t off,
                             uint64_t &addr) {
        if (module == module_absolute) {
            addr = off;
            return true;
        }
        if (module >= current_index.size() ||
            current_index[module] == module_absolute)
            return false;
        addr = mods[current_index[module]].codeBase + off;
        return true;
    };

    const auto applyRecord = [&](const EdgeRecord &record) {
        uint64_t from = 0;
        uint64_t to = 0;
        if (!resolve(record.fromModule, record.fromOff, from) ||
            !resolve(record.toModule, record.toOff, to)) {
            ++result.edgesMissed;
            return;
        }
        const int64_t edge = itc.findEdge(from, to);
        if (edge < 0) {
            ++result.edgesMissed;
            return;
        }
        if (record.credit)
            itc.setHighCredit(edge);
        for (const auto &seq : record.seqs)
            itc.addTntSequence(edge, seq);
        if (record.varied)
            itc.markTntVaried(edge);
        ++result.edgesApplied;
    };

    // Per-module sections (same order as the table), then orphans.
    for (uint64_t m = 0; m <= num_profile_mods; ++m) {
        const bool orphan_section = m == num_profile_mods;
        const uint64_t count = r.u64();
        if (r.truncated || count > (1ULL << 24))
            return failWith(std::move(result),
                            ProfileLoadResult::Status::Truncated,
                            "truncated edge section");
        const bool matched = orphan_section ||
            current_index[m] != module_absolute;
        if (!orphan_section) {
            if (matched)
                ++result.modulesLoaded;
            else
                ++result.modulesSkipped;
        }
        for (uint64_t i = 0; i < count; ++i) {
            EdgeRecord record;
            if (!readEdgeRecord(r, record))
                return failWith(std::move(result),
                                ProfileLoadResult::Status::Truncated,
                                "truncated edge record");
            // A skipped module's records must still be parsed to
            // keep the stream in sync; they are just not applied.
            if (matched)
                applyRecord(record);
        }
    }

    readPathSection(guard, r);
    if (r.truncated)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::Truncated,
                        "truncated path section");

    if (num_profile_mods > 0 && result.modulesLoaded == 0)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::ModuleMismatch,
                        "no profile module matched this program");
    return result;
}

} // namespace

ProfileLoadResult
tryLoadProfile(FlowGuard &guard, std::istream &in)
{
    ProfileLoadResult result;
    if (!in)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::IoError,
                        "unreadable profile stream");
    guard.analyze();

    Reader r{in};
    if (r.u64() != profile_magic || r.truncated)
        return failWith(std::move(result),
                        ProfileLoadResult::Status::BadMagic,
                        "not a FlowGuard profile");
    const uint64_t version = r.u64();
    result.version = static_cast<uint32_t>(version);
    if (version == profile_version_v2)
        return loadProfileV2(guard, r, std::move(result));
    if (version == profile_version_v3)
        return loadProfileV3(guard, r, std::move(result));
    return failWith(std::move(result),
                    ProfileLoadResult::Status::BadVersion,
                    "unsupported FlowGuard profile version " +
                        std::to_string(version));
}

ProfileLoadResult
tryLoadProfile(FlowGuard &guard, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ProfileLoadResult result;
        return failWith(std::move(result),
                        ProfileLoadResult::Status::IoError,
                        "cannot read profile from " + path);
    }
    return tryLoadProfile(guard, in);
}

void
loadProfile(FlowGuard &guard, std::istream &in)
{
    const ProfileLoadResult result = tryLoadProfile(guard, in);
    if (!result.ok())
        fg_fatal("profile load failed (",
                 profileStatusName(result.status), "): ",
                 result.message);
}

void
loadProfile(FlowGuard &guard, const std::string &path)
{
    const ProfileLoadResult result = tryLoadProfile(guard, path);
    if (!result.ok())
        fg_fatal("profile load failed (",
                 profileStatusName(result.status), "): ",
                 result.message);
}

} // namespace flowguard
