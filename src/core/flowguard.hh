/**
 * @file
 * FlowGuard — the top-level public API.
 *
 * Wraps the full pipeline of the paper behind one object:
 *
 *   offline   analyze()   static analysis: TypeArmor, conservative
 *                         O-CFG, ITC-CFG reconstruction (Figure 2)
 *             train(...)  coverage-oriented fuzzing + edge credit /
 *                         TNT labeling (§4.3)
 *   online    run(...)    executes the program on the CPU model with
 *                         IPT tracing, syscall interception and
 *                         hybrid fast/slow-path checking (§5); kills
 *                         the process on a control-flow violation
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   FlowGuard guard(app.program);
 *   guard.analyze();
 *   guard.train(2'000);
 *   auto outcome = guard.run(input);
 *   if (outcome.attackDetected) ...
 */

#ifndef FLOWGUARD_CORE_FLOWGUARD_HH
#define FLOWGUARD_CORE_FLOWGUARD_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "analysis/aia.hh"
#include "analysis/path_index.hh"
#include "analysis/cfg_builder.hh"
#include "analysis/itc_cfg.hh"
#include "dynamic/dynamic_guard.hh"
#include "fuzz/fuzzer.hh"
#include "isa/program.hh"
#include "runtime/kernel.hh"
#include "runtime/monitor.hh"

namespace flowguard {

struct FlowGuardConfig
{
    /** Fast-path policy (pkt_count, cred_ratio, module stride). */
    runtime::FastPathConfig fastPath;
    /** Intercepted security-sensitive syscalls. */
    std::set<int64_t> endpoints =
        runtime::FlowGuardKernel::defaultEndpoints();
    /** O-CFG construction knobs. */
    analysis::CfgBuildOptions cfgOptions;
    /** Cache negative slow-path verdicts into the fast path. */
    bool cacheSlowPathVerdicts = true;
    /** §7.1.2 fallback: also check every buffer-full PMI window,
     *  defeating endpoint-pruning attacks at extra cost. */
    bool pmiChecking = false;
    /** §7.1.2 future-work mode: path-sensitive fast checking. */
    bool pathSensitive = false;
    /** TIP targets per matched path in path-sensitive mode. */
    size_t pathLength = 3;
    /** ToPA geometry (the paper uses one ToPA with two regions). */
    std::vector<size_t> topaRegions = {8192, 8192};
    /** PSB sync-point period in trace bytes. */
    uint32_t psbPeriodBytes = 1024;
    /** Degradation policy for windows with trace loss (§7.1.2). */
    runtime::LossPolicy lossPolicy =
        runtime::LossPolicy::EscalateSlowPath;
    /** PMI service latency in trace bytes: 0 = instant service (no
     *  loss); positive values drop that much trace per buffer-full
     *  overflow episode, exercising the loss machinery. */
    size_t pmiServiceLatencyBytes = 0;
    /** Fuzzer seed. */
    uint64_t fuzzSeed = 1;
    /** Instruction budget for each fuzz execution. */
    uint64_t fuzzRunMaxInsts = 2'000'000;

    // --- dynamic code (src/dynamic) ---------------------------------------
    /** Policy for transitions through JIT-mapped code. */
    dynamic::JitPolicy jitPolicy = dynamic::JitPolicy::Allowlist;
    /**
     * Module indices that start unloaded and come and go at runtime
     * through the dlopen/dlclose syscalls. Non-empty implies dynamic
     * tracking.
     */
    std::vector<uint32_t> dynamicModules;
    /** Enable the dynamic-code subsystem even with no initially
     *  unloaded modules (JIT-only workloads). */
    bool dynamicTracking = false;

    // --- observability (src/telemetry) ------------------------------------
    /**
     * External telemetry hub. When set, run() and makeProcessHarness()
     * wire it through the kernel, monitor, encoder and PMI guard, so
     * the caller's sink sees the whole check lifecycle. When null,
     * run() builds a run-local hub (null sink) purely so violation
     * reports still carry flight-recorder snapshots. Must outlive the
     * guard's runs/harnesses.
     */
    telemetry::Telemetry *telemetry = nullptr;
    /** Disables even the run-local hub: zero observability
     *  instrumentation on the check path (bench baseline). */
    bool telemetryOff = false;
};

class FlowGuard
{
  public:
    /** `program` must outlive this object. */
    explicit FlowGuard(const isa::Program &program,
                       FlowGuardConfig config = {});
    FlowGuard(FlowGuard &&) noexcept = default;
    ~FlowGuard();

    // --- offline phase -----------------------------------------------------
    /** Runs the static pipeline. Idempotent. */
    void analyze();

    /** True once analyze() has run. */
    bool analyzed() const { return _itc != nullptr; }

    /**
     * Coverage-oriented fuzzing training: mutates from `seeds` for
     * `budget` target executions, then replays the corpus under IPT
     * to label ITC-CFG edge credits and TNT info.
     */
    void train(uint64_t budget,
               std::vector<fuzz::Input> seeds = {{0}});

    /** Labels credits from an existing corpus (no fuzzing). */
    void trainWithCorpus(const std::vector<fuzz::Input> &corpus);

    /** The runner used for fuzzing/training: executes the program
     *  under a plain kernel with the given sink attached. */
    fuzz::RunTarget defaultRunner() const;

    // --- offline artifacts -------------------------------------------------
    const analysis::Cfg &ocfg() const;
    analysis::ItcCfg &itc();
    const analysis::ItcCfg &itc() const;
    const analysis::TypeArmorInfo &typearmor() const;
    analysis::AiaReport aia() const;
    analysis::CfgStats cfgStats() const;
    /** Wall-clock seconds spent in analyze() (Table 5). */
    double analyzeSeconds() const { return _analyzeSeconds; }
    const fuzz::Fuzzer *fuzzer() const { return _fuzzer.get(); }
    /** Trained path index (null unless pathSensitive). */
    const analysis::PathIndex *paths() const { return _paths.get(); }
    /** Mutable path index (profile loading). */
    analysis::PathIndex *mutablePaths() { return _paths.get(); }

    // --- online phase -------------------------------------------------------
    struct RunOutcome
    {
        cpu::Cpu::Stop stop = cpu::Cpu::Stop::Halted;
        int64_t exitCode = 0;
        bool attackDetected = false;
        std::vector<runtime::ViolationReport> violations;
        runtime::MonitorStats monitor;
        cpu::CycleAccount cycles;
        uint64_t instructions = 0;
        uint64_t syscalls = 0;
        std::vector<uint8_t> output;
        trace::IptStats trace;
        /** ToPA loss accounting (nonzero only with PMI latency). */
        uint64_t overflowEpisodes = 0;
        uint64_t droppedTraceBytes = 0;
        /** Dynamic-code accounting (all-zero without tracking). */
        dynamic::DynamicStats dynamicStats;
        /** One CheckVerdict byte per finally-resolved check — the
         *  layout-independent stream the ASLR property compares. */
        std::vector<uint8_t> verdicts;
        /** Kind::UnknownCode observations under AuditOnly. */
        std::vector<runtime::ViolationReport> auditReports;
    };

    /** Runs the protected process on `input`. Requires analyze(). */
    RunOutcome run(const std::vector<uint8_t> &input,
                   uint64_t max_insts = 50'000'000);

    /**
     * One protected process's online stack (CPU, ToPA, encoder,
     * monitor) built from this guard's trained offline artifacts —
     * the unit a multi-process service experiment wires into a
     * cpu::Machine + runtime::ProtectionService alongside its peers.
     */
    struct ProcessHarness
    {
        std::unique_ptr<cpu::Cpu> cpu;
        std::unique_ptr<trace::Topa> topa;
        std::unique_ptr<trace::IptEncoder> encoder;
        /** Private ITC-CFG copy (null unless dynamic tracking is on).
         *  Liveness and runtime credit are per-process state: one
         *  process's dlclose must not retract edges under its peers,
         *  so each harness mutates its own copy of the trained
         *  graph. */
        std::unique_ptr<analysis::ItcCfg> itc;
        std::unique_ptr<runtime::Monitor> monitor;
        /** Dynamic-code guard (null unless the config enables it).
         *  The caller's kernel must addCodeEventSink(dyn.get()). */
        std::unique_ptr<dynamic::DynamicGuard> dyn;
        cpu::CycleAccount cycles;
    };

    /**
     * Builds the online stack for `program` — typically a copy of
     * the analyzed binary mapped under a different CR3, so several
     * processes share one trained ITC-CFG. `program` must outlive
     * the harness. The monitor is created with autoCommitCache
     * cleared: in service runs the check scheduler owns cache
     * commits (a timed-out or deferred verdict must never earn
     * durable credit).
     */
    std::unique_ptr<ProcessHarness>
    makeProcessHarness(const isa::Program &program);

    /** Baseline: same program, no tracing, no checking. */
    RunOutcome runUnprotected(const std::vector<uint8_t> &input,
                              uint64_t max_insts = 50'000'000) const;

    const FlowGuardConfig &config() const { return _config; }
    const isa::Program &program() const { return _program; }

  private:
    const isa::Program &_program;
    FlowGuardConfig _config;

    std::unique_ptr<analysis::TypeArmorInfo> _typearmor;
    std::unique_ptr<analysis::Cfg> _ocfg;
    std::unique_ptr<analysis::ItcCfg> _itc;
    std::unique_ptr<fuzz::Fuzzer> _fuzzer;
    std::unique_ptr<analysis::PathIndex> _paths;
    double _analyzeSeconds = 0.0;
};

} // namespace flowguard

#endif // FLOWGUARD_CORE_FLOWGUARD_HH
