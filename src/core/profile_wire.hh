/**
 * @file
 * The profile wire format's primitive layer, shared between the
 * profile writer/loader (v2/v3) and the crash-recovery structures
 * (journal, snapshot) that reuse it: little-endian u64 fields,
 * length-prefixed strings, and a bounded Reader that records
 * truncation instead of aborting — the property every recoverable
 * loader in the system is built on.
 */

#ifndef FLOWGUARD_CORE_PROFILE_WIRE_HH
#define FLOWGUARD_CORE_PROFILE_WIRE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

namespace flowguard::wire {

inline void
write64(std::ostream &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.put(static_cast<char>(value >> (8 * i)));
}

inline void
writeString(std::ostream &out, const std::string &s)
{
    write64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/** Bounded reader that records truncation instead of aborting. */
struct Reader
{
    std::istream &in;
    bool truncated = false;

    uint64_t
    u64()
    {
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i) {
            const int byte = in.get();
            if (byte < 0) {
                truncated = true;
                return 0;
            }
            value |= static_cast<uint64_t>(byte) << (8 * i);
        }
        return value;
    }

    uint8_t
    u8()
    {
        const int byte = in.get();
        if (byte < 0) {
            truncated = true;
            return 0;
        }
        return static_cast<uint8_t>(byte);
    }

    std::string
    str()
    {
        const uint64_t len = u64();
        if (truncated || len > (1ULL << 20)) {
            truncated = true;
            return {};
        }
        std::string s(len, '\0');
        in.read(s.data(), static_cast<std::streamsize>(len));
        if (static_cast<uint64_t>(in.gcount()) != len)
            truncated = true;
        return s;
    }
};

} // namespace flowguard::wire

#endif // FLOWGUARD_CORE_PROFILE_WIRE_HH
