/**
 * @file
 * FlightRecorder — fixed-size ring of the most recent telemetry
 * events for one protected process.
 *
 * The point is forensics, not statistics: when a CfiViolation,
 * TraceLoss, or ProtectionGap report fires (or the checker dies),
 * the ring is snapshotted into the report so a conviction comes with
 * the last-N-events story of how it happened — which windows drained,
 * what the decoder skipped, which credit commits landed.
 *
 * The ring never allocates after construction and never blocks the
 * check path: push is a copy into a preallocated slot.
 */

#ifndef FLOWGUARD_TELEMETRY_FLIGHT_RECORDER_HH
#define FLOWGUARD_TELEMETRY_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/events.hh"

namespace flowguard::telemetry {

class FlightRecorder
{
  public:
    static constexpr size_t kDefaultCapacity = 64;

    explicit FlightRecorder(size_t capacity = kDefaultCapacity)
        : _ring(capacity ? capacity : 1)
    {}

    void
    push(const FlightEvent &event)
    {
        _ring[_next] = event;
        _next = (_next + 1) % _ring.size();
        if (_size < _ring.size())
            ++_size;
        else
            ++_dropped;
        ++_pushed;
    }

    /** Oldest-first copy of the ring's live contents. */
    std::vector<FlightEvent>
    snapshot() const
    {
        std::vector<FlightEvent> out;
        out.reserve(_size);
        const size_t start =
            (_next + _ring.size() - _size) % _ring.size();
        for (size_t i = 0; i < _size; ++i)
            out.push_back(_ring[(start + i) % _ring.size()]);
        return out;
    }

    void
    clear()
    {
        _next = 0;
        _size = 0;
    }

    size_t size() const { return _size; }
    size_t capacity() const { return _ring.size(); }
    /** Events pushed over the ring's lifetime. */
    uint64_t pushed() const { return _pushed; }
    /** Events that aged out of the ring (overwritten). */
    uint64_t dropped() const { return _dropped; }

  private:
    std::vector<FlightEvent> _ring;
    size_t _next = 0;
    size_t _size = 0;
    uint64_t _pushed = 0;
    uint64_t _dropped = 0;
};

} // namespace flowguard::telemetry

#endif // FLOWGUARD_TELEMETRY_FLIGHT_RECORDER_HH
