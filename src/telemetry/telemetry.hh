/**
 * @file
 * Telemetry — the hub that ties the observability layer together:
 * the metric registry, the span tracer, and the per-process flight
 * recorders, all stamped from one sim-clock source.
 *
 * Producers (kernel, monitor, decoders, service, supervisor) hold a
 * nullable `Telemetry *` and emit through it; a null hub means no
 * instrumentation at all (the telemetry-free baseline), a hub with
 * the default NullSink means flight rings record but nothing is
 * serialized (the near-zero-overhead production default), and a
 * JSONL/Chrome sink turns on full streaming.
 *
 * Span ids are a process-wide monotonic counter and timestamps come
 * from an injected clock (sim cycles from the cost model), so the
 * emitted stream is deterministic under a fixed seed.
 */

#ifndef FLOWGUARD_TELEMETRY_TELEMETRY_HH
#define FLOWGUARD_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "telemetry/events.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics.hh"
#include "telemetry/sink.hh"

namespace flowguard::telemetry {

struct TelemetryConfig
{
    /** Events each per-process flight ring retains. */
    size_t flightCapacity = FlightRecorder::kDefaultCapacity;
};

class Telemetry
{
  public:
    explicit Telemetry(TelemetryConfig config = {});
    ~Telemetry();

    /** Non-owning; null restores the internal NullSink. */
    void setSink(TelemetrySink *sink);
    TelemetrySink &sink() { return *_sink; }

    /** Sim-clock source; cost-model cycles, never wall clock. */
    void setClock(std::function<uint64_t()> clock);
    uint64_t now() const { return _clock ? _clock() : 0; }

    MetricRegistry &metrics() { return _metrics; }
    const MetricRegistry &metrics() const { return _metrics; }

    // --- spans --------------------------------------------------------------

    /** Opens a span; returns its id. Parent is the innermost span
     *  still open for the same cr3 (0 at top level). */
    uint64_t beginSpan(SpanKind kind, uint64_t cr3, uint64_t seq = 0);

    /** Closes span `id`: records it into the cr3's flight ring and
     *  emits it to the sink. Unknown ids are ignored (the span's
     *  process may have been dropped mid-flight). */
    void endSpan(uint64_t id, uint8_t verdict = 0, uint64_t a = 0,
                 uint64_t b = 0);

    /**
     * Emits an already-bounded span in one call — the async shape
     * (escalations resolved cycles after they were enqueued) where
     * holding a span open across the deferral would leak on shed or
     * crash-wipe paths.
     */
    void completeSpan(SpanKind kind, uint64_t cr3, uint64_t seq,
                      uint64_t begin, uint64_t end,
                      uint8_t verdict = 0, uint64_t a = 0,
                      uint64_t b = 0);

    /** Point event at now(). */
    void instant(EventKind kind, uint64_t cr3, uint64_t seq = 0,
                 uint64_t a = 0, uint64_t b = 0);

    // --- flight recorders ---------------------------------------------------

    FlightRecorder &recorder(uint64_t cr3);

    /** Oldest-first copy of cr3's ring; empty if never written. */
    std::vector<FlightEvent> snapshotFlight(uint64_t cr3) const;

    /**
     * Forensic dump: re-emits cr3's entire ring to the sink (so the
     * stream carries the pre-crash story even if earlier events
     * predate sink attachment) and returns the snapshot. Called by
     * the RecoverySupervisor on checker death.
     */
    std::vector<FlightEvent> dumpRecorder(uint64_t cr3);

    /** Number of processes with a live flight ring. */
    size_t processCount() const { return _recorders.size(); }

    // --- logging tap --------------------------------------------------------

    /**
     * Routes warn()/inform() into this hub: each message bumps the
     * "log.warn"/"log.inform" counter and emits a LogMessage instant
     * (a = message length). The hook is process-global — one hub at
     * a time — and is detached by the destructor.
     */
    void attachLogHook();
    void detachLogHook();

  private:
    struct OpenSpan
    {
        uint64_t id = 0;
        uint64_t parent = 0;
        SpanKind kind = SpanKind::Trap;
        uint64_t cr3 = 0;
        uint64_t seq = 0;
        uint64_t begin = 0;
    };

    void emit(const FlightEvent &event);

    TelemetryConfig _config;
    NullSink _null;
    TelemetrySink *_sink = &_null;
    bool _sinkEnabled = false;
    std::function<uint64_t()> _clock;
    MetricRegistry _metrics;
    std::map<uint64_t, FlightRecorder> _recorders;
    std::vector<OpenSpan> _open;
    uint64_t _nextSpanId = 1;
    bool _logHookAttached = false;
};

/**
 * RAII span that tolerates a null hub — the pattern every producer
 * uses so the telemetry-free configuration stays branch-cheap:
 *
 *   ScopedSpan span(_telemetry, SpanKind::FastCheck, cr3, seq);
 *   ... work ...
 *   span.setVerdict(v);
 */
class ScopedSpan
{
  public:
    ScopedSpan(Telemetry *telemetry, SpanKind kind, uint64_t cr3,
               uint64_t seq = 0)
        : _telemetry(telemetry)
    {
        if (_telemetry)
            _id = _telemetry->beginSpan(kind, cr3, seq);
    }

    ~ScopedSpan() { finish(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    void setVerdict(uint8_t verdict) { _verdict = verdict; }
    void setPayload(uint64_t a, uint64_t b = 0) { _a = a; _b = b; }

    void
    finish()
    {
        if (_telemetry && _id) {
            _telemetry->endSpan(_id, _verdict, _a, _b);
            _id = 0;
        }
    }

  private:
    Telemetry *_telemetry = nullptr;
    uint64_t _id = 0;
    uint8_t _verdict = 0;
    uint64_t _a = 0;
    uint64_t _b = 0;
};

} // namespace flowguard::telemetry

#endif // FLOWGUARD_TELEMETRY_TELEMETRY_HH
