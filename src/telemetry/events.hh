/**
 * @file
 * Telemetry event model — the span taxonomy for the endpoint-check
 * lifecycle and the instant events that ride alongside it.
 *
 * A span is one timed stage of a check (trap → ToPA drain → fast
 * decode → binary-search check → slow-path escalation → verdict
 * commit → delivery); an instant is a point event (an OVF episode, a
 * credit commit, a conviction). Both flatten into the same POD
 * `FlightEvent` so one ring buffer, one sink interface, and one
 * serialization path carry everything.
 *
 * Timestamps are sim-clock cycles from the cost model — never wall
 * clock — so two runs of the same seeded workload emit byte-identical
 * streams.
 */

#ifndef FLOWGUARD_TELEMETRY_EVENTS_HH
#define FLOWGUARD_TELEMETRY_EVENTS_HH

#include <cstdint>

namespace flowguard::telemetry {

/** Stages of the endpoint-check lifecycle (ISSUE §tentpole). */
enum class SpanKind : uint8_t {
    Trap,          ///< endpoint intercept: syscall entry to decision
    TopaDrain,     ///< draining the ToPA buffer snapshot
    FastDecode,    ///< packet-layer decode of the window
    FastCheck,     ///< binary-search ITC-CFG matching
    SlowEscalate,  ///< escalation: submit → resolution/delivery
    SlowCheck,     ///< full decode + shadow stack / TypeArmor walk
    FullDecode,    ///< instruction-flow-layer decode (inside slow)
    VerdictCommit, ///< staged verdict-cache commit
    Delivery,      ///< deferred verdict / pending-kill delivery
    PmiCheck,      ///< mem-write-window check inside a PMI
    Barrier,       ///< code-unload barrier check
};

const char *spanKindName(SpanKind kind);

/** Everything a flight recorder ring can hold. */
enum class EventKind : uint8_t {
    Span,             ///< a completed span (see SpanKind)
    Overflow,         ///< hardware OVF episode (a = dropped bytes)
    Resync,           ///< decoder skip-to-sync (a = count, b = bytes)
    CreditCommit,     ///< verdict-cache commit (a = transitions)
    Violation,        ///< conviction (a = from, b = to)
    VerdictCommitted, ///< deferred kill journaled (a = seq)
    VerdictDelivered, ///< deferred kill delivered (a = seq)
    CheckerCrash,     ///< checker process died (a = 1 when hang)
    CheckerRestart,   ///< warm restart completed
    FaultInjected,    ///< control-plane fault fired (a = FaultMode)
    LogMessage,       ///< warn()/inform() routed through the hook
};

const char *eventKindName(EventKind kind);

/**
 * One telemetry event, span or instant. POD on purpose: rings copy
 * it, reports snapshot vectors of it, sinks serialize it.
 */
struct FlightEvent
{
    EventKind kind = EventKind::Span;
    SpanKind span = SpanKind::Trap; ///< meaningful when kind == Span
    uint8_t verdict = 0;  ///< CheckVerdict for check spans (0 = n/a)
    uint64_t id = 0;      ///< span id; 0 for instants
    uint64_t parent = 0;  ///< enclosing span id; 0 at top level
    uint64_t cr3 = 0;
    uint64_t seq = 0;     ///< endpoint sequence number (0 = n/a)
    uint64_t begin = 0;   ///< sim cycles (== end for instants)
    uint64_t end = 0;
    uint64_t a = 0;       ///< payload: from-address, bytes, count...
    uint64_t b = 0;       ///< payload: to-address...
};

} // namespace flowguard::telemetry

#endif // FLOWGUARD_TELEMETRY_EVENTS_HH
