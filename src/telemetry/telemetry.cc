#include "telemetry/telemetry.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace flowguard::telemetry {

Telemetry::Telemetry(TelemetryConfig config)
    : _config(config)
{}

Telemetry::~Telemetry()
{
    detachLogHook();
}

void
Telemetry::attachLogHook()
{
    setLogHook([this](const char *prefix, const std::string &msg) {
        const bool warning = std::strcmp(prefix, "warn") == 0;
        _metrics.counter(warning ? "log.warn" : "log.inform").inc();
        instant(EventKind::LogMessage, 0, 0, msg.size());
    });
    _logHookAttached = true;
}

void
Telemetry::detachLogHook()
{
    if (_logHookAttached) {
        setLogHook(LogHook{});
        _logHookAttached = false;
    }
}

void
Telemetry::setSink(TelemetrySink *sink)
{
    _sink = sink ? sink : &_null;
    _sinkEnabled = _sink->enabled();
}

void
Telemetry::setClock(std::function<uint64_t()> clock)
{
    _clock = std::move(clock);
}

FlightRecorder &
Telemetry::recorder(uint64_t cr3)
{
    auto it = _recorders.find(cr3);
    if (it == _recorders.end()) {
        it = _recorders
                 .emplace(cr3, FlightRecorder(_config.flightCapacity))
                 .first;
    }
    return it->second;
}

void
Telemetry::emit(const FlightEvent &event)
{
    recorder(event.cr3).push(event);
    if (_sinkEnabled)
        _sink->onEvent(event);
}

uint64_t
Telemetry::beginSpan(SpanKind kind, uint64_t cr3, uint64_t seq)
{
    OpenSpan span;
    span.id = _nextSpanId++;
    span.kind = kind;
    span.cr3 = cr3;
    span.seq = seq;
    span.begin = now();
    // Parent: innermost still-open span of the same process.
    for (auto it = _open.rbegin(); it != _open.rend(); ++it) {
        if (it->cr3 == cr3) {
            span.parent = it->id;
            break;
        }
    }
    _open.push_back(span);
    return span.id;
}

void
Telemetry::endSpan(uint64_t id, uint8_t verdict, uint64_t a,
                   uint64_t b)
{
    if (id == 0)
        return;
    auto it = std::find_if(_open.rbegin(), _open.rend(),
                           [id](const OpenSpan &s) {
                               return s.id == id;
                           });
    if (it == _open.rend())
        return;
    FlightEvent event;
    event.kind = EventKind::Span;
    event.span = it->kind;
    event.id = it->id;
    event.parent = it->parent;
    event.cr3 = it->cr3;
    event.seq = it->seq;
    event.begin = it->begin;
    event.end = std::max(now(), it->begin);
    event.verdict = verdict;
    event.a = a;
    event.b = b;
    _open.erase(std::next(it).base());
    emit(event);
}

void
Telemetry::completeSpan(SpanKind kind, uint64_t cr3, uint64_t seq,
                        uint64_t begin, uint64_t end, uint8_t verdict,
                        uint64_t a, uint64_t b)
{
    FlightEvent event;
    event.kind = EventKind::Span;
    event.span = kind;
    event.id = _nextSpanId++;
    event.cr3 = cr3;
    event.seq = seq;
    event.begin = begin;
    event.end = std::max(end, begin);
    event.verdict = verdict;
    event.a = a;
    event.b = b;
    emit(event);
}

void
Telemetry::instant(EventKind kind, uint64_t cr3, uint64_t seq,
                   uint64_t a, uint64_t b)
{
    FlightEvent event;
    event.kind = kind;
    event.cr3 = cr3;
    event.seq = seq;
    event.begin = event.end = now();
    event.a = a;
    event.b = b;
    emit(event);
}

std::vector<FlightEvent>
Telemetry::snapshotFlight(uint64_t cr3) const
{
    auto it = _recorders.find(cr3);
    if (it == _recorders.end())
        return {};
    return it->second.snapshot();
}

std::vector<FlightEvent>
Telemetry::dumpRecorder(uint64_t cr3)
{
    auto snapshot = snapshotFlight(cr3);
    if (_sinkEnabled) {
        for (const auto &event : snapshot)
            _sink->onEvent(event);
    }
    return snapshot;
}

} // namespace flowguard::telemetry
