#include "telemetry/metrics.hh"

#include <algorithm>
#include <bit>

#include "support/logging.hh"

namespace flowguard::telemetry {

void
CycleHistogram::record(uint64_t cycles)
{
    const size_t bucket =
        cycles == 0 ? 0 : static_cast<size_t>(std::bit_width(cycles));
    ++_buckets[std::min(bucket, kBuckets - 1)];
    if (_count == 0 || cycles < _min)
        _min = cycles;
    _max = std::max(_max, cycles);
    _sum += cycles;
    ++_count;
}

double
CycleHistogram::mean() const
{
    return _count ? static_cast<double>(_sum) / _count : 0.0;
}

double
CycleHistogram::quantile(double q) const
{
    if (_count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(_count);
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        if (_buckets[i] == 0)
            continue;
        seen += _buckets[i];
        if (static_cast<double>(seen) < rank)
            continue;
        if (i == 0)
            return 0.0;
        // Interpolate inside [2^(i-1), 2^i) by the rank's position
        // within this bucket's population.
        const double lo = static_cast<double>(uint64_t{1} << (i - 1));
        const double hi = lo * 2.0;
        const double into =
            1.0 - (static_cast<double>(seen) - rank) / _buckets[i];
        double v = lo + (hi - lo) * into;
        // The sample extremes are exact; never report past them.
        v = std::max(v, static_cast<double>(_min));
        return std::min(v, static_cast<double>(_max));
    }
    return static_cast<double>(_max);
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    auto &slot = _counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    auto &slot = _gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

CycleHistogram &
MetricRegistry::histogram(const std::string &name)
{
    auto &slot = _histograms[name];
    if (!slot)
        slot = std::make_unique<CycleHistogram>();
    return *slot;
}

void
MetricRegistry::addSource(std::string label, Source source)
{
    fg_assert(source, "metric source '", label, "' is empty");
    _sources.emplace_back(std::move(label), std::move(source));
}

void
MetricRegistry::collect()
{
    for (auto &[label, source] : _sources)
        source(*this);
}

void
MetricRegistry::writeJson(JsonWriter &json) const
{
    json.beginObject();
    for (const auto &[name, counter] : _counters)
        json.field(name, counter->value());
    for (const auto &[name, gauge] : _gauges)
        json.field(name, gauge->value());
    for (const auto &[name, histogram] : _histograms) {
        json.key(name).beginObject();
        json.field("count", histogram->count());
        json.field("sum", histogram->sum());
        json.field("min", histogram->min());
        json.field("max", histogram->max());
        json.field("mean", histogram->mean());
        json.field("p50", histogram->p50());
        json.field("p90", histogram->p90());
        json.field("p99", histogram->p99());
        json.endObject();
    }
    json.endObject();
}

std::string
MetricRegistry::toJson() const
{
    JsonWriter json;
    writeJson(json);
    return json.str();
}

void
writeBenchJson(const std::string &path, const std::string &bench,
               bool smoke, MetricRegistry &registry)
{
    registry.collect();
    JsonWriter json;
    json.beginObject();
    json.field("bench", bench);
    json.field("smoke", smoke);
    json.key("metrics");
    registry.writeJson(json);
    json.endObject();
    json.writeFile(path);
}

} // namespace flowguard::telemetry
