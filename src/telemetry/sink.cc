#include "telemetry/sink.hh"

#include <fstream>

#include "support/logging.hh"
#include "support/stats.hh"

namespace flowguard::telemetry {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Trap: return "trap";
      case SpanKind::TopaDrain: return "topa-drain";
      case SpanKind::FastDecode: return "fast-decode";
      case SpanKind::FastCheck: return "fast-check";
      case SpanKind::SlowEscalate: return "slow-escalate";
      case SpanKind::SlowCheck: return "slow-check";
      case SpanKind::FullDecode: return "full-decode";
      case SpanKind::VerdictCommit: return "verdict-commit";
      case SpanKind::Delivery: return "delivery";
      case SpanKind::PmiCheck: return "pmi-check";
      case SpanKind::Barrier: return "barrier";
    }
    return "?";
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Span: return "span";
      case EventKind::Overflow: return "overflow";
      case EventKind::Resync: return "resync";
      case EventKind::CreditCommit: return "credit-commit";
      case EventKind::Violation: return "violation";
      case EventKind::VerdictCommitted: return "verdict-committed";
      case EventKind::VerdictDelivered: return "verdict-delivered";
      case EventKind::CheckerCrash: return "checker-crash";
      case EventKind::CheckerRestart: return "checker-restart";
      case EventKind::FaultInjected: return "fault-injected";
      case EventKind::LogMessage: return "log";
    }
    return "?";
}

namespace {

void
writeEventFields(JsonWriter &json, const FlightEvent &event)
{
    json.beginObject();
    json.field("ev", eventKindName(event.kind));
    if (event.kind == EventKind::Span) {
        json.field("span", spanKindName(event.span));
        json.field("id", event.id);
        if (event.parent)
            json.field("parent", event.parent);
    }
    json.field("cr3", event.cr3);
    if (event.seq)
        json.field("seq", event.seq);
    json.field("begin", event.begin);
    if (event.end != event.begin)
        json.field("end", event.end);
    if (event.verdict)
        json.field("verdict", static_cast<uint64_t>(event.verdict));
    if (event.a)
        json.field("a", event.a);
    if (event.b)
        json.field("b", event.b);
    json.endObject();
}

} // namespace

std::string
JsonlSink::toJson(const FlightEvent &event)
{
    JsonWriter json;
    writeEventFields(json, event);
    return json.str();
}

void
JsonlSink::onEvent(const FlightEvent &event)
{
    _out += toJson(event);
    _out += '\n';
    ++_events;
}

void
JsonlSink::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fg_assert(out.good(), "cannot open JSONL output file");
    out << _out;
    fg_assert(out.good(), "JSONL write failed");
}

void
ChromeTraceSink::onEvent(const FlightEvent &event)
{
    _events.push_back(event);
}

std::string
ChromeTraceSink::render() const
{
    JsonWriter json;
    json.beginObject();
    json.field("displayTimeUnit", "ns");
    json.key("traceEvents").beginArray();
    for (const auto &event : _events) {
        json.beginObject();
        const bool span = event.kind == EventKind::Span;
        json.field("name", span ? spanKindName(event.span)
                                : eventKindName(event.kind));
        json.field("cat", span ? "check" : "event");
        json.field("ph", span ? "X" : "i");
        // 1 sim cycle == 1 us in the viewer; only relative scale
        // matters on the timeline.
        json.field("ts", event.begin);
        if (span)
            json.field("dur", event.end - event.begin);
        else
            json.field("s", "p"); // instant scoped to the process
        json.field("pid", event.cr3);
        json.field("tid", uint64_t{1});
        json.key("args").beginObject();
        if (event.seq)
            json.field("seq", event.seq);
        if (event.verdict)
            json.field("verdict",
                       static_cast<uint64_t>(event.verdict));
        if (event.a)
            json.field("a", event.a);
        if (event.b)
            json.field("b", event.b);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

void
ChromeTraceSink::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fg_assert(out.good(), "cannot open trace output file");
    out << render() << "\n";
    fg_assert(out.good(), "trace write failed");
}

} // namespace flowguard::telemetry
