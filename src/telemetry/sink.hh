/**
 * @file
 * TelemetrySink — pluggable consumers for the telemetry event
 * stream.
 *
 *   NullSink         discard everything (the near-zero-overhead
 *                    default; flight rings still record)
 *   JsonlSink        one JSON object per line — greppable, diffable,
 *                    byte-comparable across deterministic runs
 *   ChromeTraceSink  Chrome trace-event JSON; load the file in
 *                    Perfetto (ui.perfetto.dev) or chrome://tracing
 *                    to see the check lifecycle on a timeline
 *
 * Both file sinks serialize through the existing JsonWriter, and
 * timestamps are sim-clock cycles (mapped to microseconds 1:1 in the
 * Chrome export), so output is deterministic under a fixed seed.
 */

#ifndef FLOWGUARD_TELEMETRY_SINK_HH
#define FLOWGUARD_TELEMETRY_SINK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/events.hh"

namespace flowguard::telemetry {

class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /** False lets producers skip event construction entirely. */
    virtual bool enabled() const { return true; }

    virtual void onEvent(const FlightEvent &event) = 0;
};

/** Swallows the stream; the disabled-path sink. */
class NullSink : public TelemetrySink
{
  public:
    bool enabled() const override { return false; }
    void onEvent(const FlightEvent &) override {}
};

/** One JSON object per event, newline-delimited. */
class JsonlSink : public TelemetrySink
{
  public:
    void onEvent(const FlightEvent &event) override;

    /** Serializes one event the way onEvent() does (no newline). */
    static std::string toJson(const FlightEvent &event);

    const std::string &text() const { return _out; }
    uint64_t events() const { return _events; }
    void clear() { _out.clear(); _events = 0; }

    /** Writes the stream to `path`; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::string _out;
    uint64_t _events = 0;
};

/**
 * Buffers spans and instants, renders them as a Chrome trace-event
 * document: spans become complete ("ph":"X") events, instants become
 * instant ("ph":"i") events; pid is the process CR3.
 */
class ChromeTraceSink : public TelemetrySink
{
  public:
    void onEvent(const FlightEvent &event) override;

    uint64_t events() const { return _events.size(); }
    void clear() { _events.clear(); }

    /** The {"traceEvents": [...]} document. */
    std::string render() const;

    /** Renders to `path`; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<FlightEvent> _events;
};

} // namespace flowguard::telemetry

#endif // FLOWGUARD_TELEMETRY_SINK_HH
