/**
 * @file
 * MetricRegistry — one namespace for every number the simulator can
 * report: counters, gauges, and log-bucketed cycle histograms with
 * deterministic p50/p90/p99 extraction.
 *
 * The existing ad-hoc stats structs (MonitorStats, ServiceStats,
 * SchedulerStats, IptStats, TrainingStats) keep their APIs; each
 * subsystem registers a *source* callback that publishes the struct's
 * fields into the registry at collect() time. Benches and sinks then
 * export one uniform shape instead of five hand-rolled dumps.
 *
 * Iteration order is sorted-by-name everywhere, so two identical runs
 * serialize byte-identical JSON.
 */

#ifndef FLOWGUARD_TELEMETRY_METRICS_HH
#define FLOWGUARD_TELEMETRY_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "support/stats.hh"

namespace flowguard::telemetry {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { _value += n; }
    /** Sources overwrite with the struct's live total. */
    void set(uint64_t v) { _value = v; }
    uint64_t value() const { return _value; }

  private:
    uint64_t _value = 0;
};

/** Point-in-time level (ratios, sizes, percentages). */
class Gauge
{
  public:
    void set(double v) { _value = v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/**
 * Power-of-two bucketed histogram for cycle costs. Bucket i counts
 * samples in [2^(i-1), 2^i); bucket 0 counts zeros. Quantiles are
 * extracted by linear interpolation inside the covering bucket —
 * coarse, but allocation-free on the record path and bit-for-bit
 * deterministic, which sample-retaining Distribution cannot promise
 * once merged across reorderable sources.
 */
class CycleHistogram
{
  public:
    static constexpr size_t kBuckets = 65;

    void record(uint64_t cycles);

    uint64_t count() const { return _count; }
    uint64_t sum() const { return _sum; }
    uint64_t min() const { return _count ? _min : 0; }
    uint64_t max() const { return _max; }
    double mean() const;

    /** Quantile estimate; q in [0, 1]. 0 when empty. */
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }

    const uint64_t *buckets() const { return _buckets; }

  private:
    uint64_t _buckets[kBuckets] = {};
    uint64_t _count = 0;
    uint64_t _sum = 0;
    uint64_t _min = 0;
    uint64_t _max = 0;
};

/**
 * Named metric store. counter()/gauge()/histogram() create on first
 * use and return a stable reference — callers may cache the pointer
 * for hot paths. addSource() registers a callback that republishes a
 * live stats struct; collect() runs every source.
 */
class MetricRegistry
{
  public:
    using Source = std::function<void(MetricRegistry &)>;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    CycleHistogram &histogram(const std::string &name);

    /** `label` shows up in errors only; sources run in add order. */
    void addSource(std::string label, Source source);

    /** Re-publishes every registered source into the registry. */
    void collect();

    size_t size() const
    {
        return _counters.size() + _gauges.size() + _histograms.size();
    }

    /**
     * Serializes every metric, sorted by name, as one object:
     * counters/gauges as scalars, histograms as
     * {count,sum,min,max,mean,p50,p90,p99}. Writes a complete JSON
     * value — callers key() it into an enclosing object.
     */
    void writeJson(JsonWriter &json) const;

    /** Whole registry as one standalone JSON document. */
    std::string toJson() const;

  private:
    // std::map: sorted iteration is the determinism contract.
    std::map<std::string, std::unique_ptr<Counter>> _counters;
    std::map<std::string, std::unique_ptr<Gauge>> _gauges;
    std::map<std::string, std::unique_ptr<CycleHistogram>> _histograms;
    std::vector<std::pair<std::string, Source>> _sources;
};

/**
 * Standard BENCH_*.json shape: {"bench": name, "smoke": flag,
 * "metrics": {...}} — the shared export path benches converge on so
 * artifact shapes stop drifting per bench.
 */
void writeBenchJson(const std::string &path, const std::string &bench,
                    bool smoke, MetricRegistry &registry);

} // namespace flowguard::telemetry

#endif // FLOWGUARD_TELEMETRY_METRICS_HH
