/**
 * @file
 * ModuleBuilder — an assembler-like fluent API for constructing Modules.
 *
 * The builder resolves function-local labels and same-module function
 * references itself (two-pass, like an assembler); anything crossing a
 * module boundary is recorded as a Fixup for the Loader.
 */

#ifndef FLOWGUARD_ISA_BUILDER_HH
#define FLOWGUARD_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/module.hh"

namespace flowguard::isa {

class ModuleBuilder
{
  public:
    ModuleBuilder(std::string name, ModuleKind kind);

    /** Declares a DT_NEEDED dependency (resolution order matters). */
    ModuleBuilder &needs(const std::string &lib);

    /** Opens a new function; instructions append to it until the next
     *  function() or build(). */
    ModuleBuilder &function(const std::string &name, bool exported = true);

    /** Defines a function-local label at the current offset. */
    ModuleBuilder &label(const std::string &name);

    // --- straight-line instructions -----------------------------------
    ModuleBuilder &nop();
    ModuleBuilder &alu(AluOp op, int rd, int rs);
    ModuleBuilder &aluImm(AluOp op, int rd, int64_t imm);
    ModuleBuilder &movImm(int rd, int64_t imm);
    /** rd = absolute address of a function (address-taken). The symbol
     *  may live in this module or be imported. */
    ModuleBuilder &movImmFunc(int rd, const std::string &symbol);
    /** rd = absolute address of a data object (local or imported). */
    ModuleBuilder &movImmData(int rd, const std::string &symbol);
    ModuleBuilder &movReg(int rd, int rs);
    ModuleBuilder &load(int rd, int rs, int64_t offset);
    ModuleBuilder &store(int rd, int64_t offset, int rs);
    ModuleBuilder &cmp(int rd, int rs);
    ModuleBuilder &cmpImm(int rd, int64_t imm);

    // --- control flow --------------------------------------------------
    /** Conditional branch to a label in the current function. */
    ModuleBuilder &jcc(Cond cond, const std::string &label);
    /** Unconditional branch to a local label or same-module function. */
    ModuleBuilder &jmp(const std::string &labelOrFunc);
    ModuleBuilder &jmpInd(int rs);
    /** Direct call to a same-module function. */
    ModuleBuilder &call(const std::string &func);
    /** Call to an imported symbol, routed through a PLT stub. */
    ModuleBuilder &callExt(const std::string &symbol);
    ModuleBuilder &callInd(int rs);
    ModuleBuilder &ret();
    ModuleBuilder &syscall(int64_t number);
    ModuleBuilder &halt();

    // --- data -----------------------------------------------------------
    /** Adds an initialized data object. */
    ModuleBuilder &dataObject(const std::string &name,
                              std::vector<uint8_t> bytes,
                              std::vector<DataReloc> relocs = {},
                              bool exported = true);
    /** Adds a zero-filled data object of `size` bytes. */
    ModuleBuilder &dataBss(const std::string &name, uint64_t size,
                           bool exported = true);
    /** Adds a table of 8-byte function pointers (one reloc each). */
    ModuleBuilder &funcPtrTable(const std::string &name,
                                const std::vector<std::string> &symbols,
                                bool exported = true);

    /** Marks the previous JmpInd as dispatching through `table`. */
    ModuleBuilder &jumpTableHint(const std::string &table, uint32_t count);

    /** Current code offset (address the next instruction will get). */
    uint64_t here() const { return _offset; }

    /** Finalizes: resolves local labels/functions, computes sizes. */
    Module build();

  private:
    struct PendingLocalRef
    {
        uint32_t instIndex;
        FixupField field;
        std::string name;       ///< label (function-scoped) or function
        uint32_t functionIndex; ///< function the ref occurs in
        bool labelOnly;         ///< jcc may only target labels
    };

    Instruction &append(Opcode op);
    void requireFunction() const;

    Module _mod;
    uint64_t _offset = 0;
    bool _built = false;

    /** label name -> code offset, per function index. */
    std::vector<std::unordered_map<std::string, uint64_t>> _labels;
    std::vector<PendingLocalRef> _localRefs;
    std::vector<PendingLocalRef> _funcAddrRefs;
    std::vector<PendingLocalRef> _dataAddrRefs;
};

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_BUILDER_HH
