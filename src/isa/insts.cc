#include "isa/insts.hh"

#include <sstream>

#include "support/logging.hh"

namespace flowguard::isa {

bool
Instruction::isCofi() const
{
    switch (op) {
      case Opcode::Jcc:
      case Opcode::Jmp:
      case Opcode::JmpInd:
      case Opcode::Call:
      case Opcode::CallInd:
      case Opcode::Ret:
      case Opcode::Syscall:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isIndirect() const
{
    return op == Opcode::JmpInd || op == Opcode::CallInd ||
           op == Opcode::Ret;
}

bool
Instruction::isConditional() const
{
    return op == Opcode::Jcc;
}

bool
Instruction::endsFlow() const
{
    return op == Opcode::Jmp || op == Opcode::JmpInd ||
           op == Opcode::Ret || op == Opcode::Halt;
}

int
instSize(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return 1;
      case Opcode::Alu: return 3;
      case Opcode::AluImm: return 4;
      case Opcode::MovImm: return 6;
      case Opcode::MovReg: return 2;
      case Opcode::Load: return 4;
      case Opcode::Store: return 4;
      case Opcode::Cmp: return 2;
      case Opcode::CmpImm: return 4;
      case Opcode::Jcc: return 2;
      case Opcode::Jmp: return 5;
      case Opcode::JmpInd: return 3;
      case Opcode::Call: return 5;
      case Opcode::CallInd: return 3;
      case Opcode::Ret: return 1;
      case Opcode::Syscall: return 2;
      case Opcode::Halt: return 1;
    }
    fg_panic("unknown opcode ", static_cast<int>(op));
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Alu: return "alu";
      case Opcode::AluImm: return "alui";
      case Opcode::MovImm: return "movi";
      case Opcode::MovReg: return "mov";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpImm: return "cmpi";
      case Opcode::Jcc: return "jcc";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpInd: return "jmp*";
      case Opcode::Call: return "call";
      case Opcode::CallInd: return "call*";
      case Opcode::Ret: return "ret";
      case Opcode::Syscall: return "syscall";
      case Opcode::Halt: return "halt";
    }
    fg_panic("unknown opcode ", static_cast<int>(op));
}

const char *
aluOpName(AluOp op)
{
    switch (op) {
      case AluOp::Add: return "add";
      case AluOp::Sub: return "sub";
      case AluOp::Mul: return "mul";
      case AluOp::Xor: return "xor";
      case AluOp::And: return "and";
      case AluOp::Or: return "or";
      case AluOp::Shl: return "shl";
      case AluOp::Shr: return "shr";
    }
    fg_panic("unknown alu op ", static_cast<int>(op));
}

const char *
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "eq";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "lt";
      case Cond::Ge: return "ge";
      case Cond::Gt: return "gt";
      case Cond::Le: return "le";
    }
    fg_panic("unknown cond ", static_cast<int>(cond));
}

std::string
disassemble(const Instruction &inst, uint64_t pc)
{
    std::ostringstream oss;
    oss << std::hex << "0x" << pc << std::dec << ": ";
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        oss << opcodeName(inst.op);
        break;
      case Opcode::Alu:
        oss << aluOpName(inst.aluOp) << " r" << int(inst.rd)
            << ", r" << int(inst.rs);
        break;
      case Opcode::AluImm:
        oss << aluOpName(inst.aluOp) << " r" << int(inst.rd)
            << ", $" << inst.imm;
        break;
      case Opcode::MovImm:
        oss << "movi r" << int(inst.rd) << ", $0x" << std::hex
            << inst.imm;
        break;
      case Opcode::MovReg:
        oss << "mov r" << int(inst.rd) << ", r" << int(inst.rs);
        break;
      case Opcode::Load:
        oss << "load r" << int(inst.rd) << ", [r" << int(inst.rs)
            << (inst.imm >= 0 ? "+" : "") << inst.imm << "]";
        break;
      case Opcode::Store:
        oss << "store [r" << int(inst.rd)
            << (inst.imm >= 0 ? "+" : "") << inst.imm << "], r"
            << int(inst.rs);
        break;
      case Opcode::Cmp:
        oss << "cmp r" << int(inst.rd) << ", r" << int(inst.rs);
        break;
      case Opcode::CmpImm:
        oss << "cmp r" << int(inst.rd) << ", $" << inst.imm;
        break;
      case Opcode::Jcc:
        oss << "j" << condName(inst.cond) << " 0x" << std::hex
            << inst.target;
        break;
      case Opcode::Jmp:
        oss << "jmp 0x" << std::hex << inst.target;
        break;
      case Opcode::JmpInd:
        oss << "jmp *r" << int(inst.rs);
        break;
      case Opcode::Call:
        oss << "call 0x" << std::hex << inst.target;
        break;
      case Opcode::CallInd:
        oss << "call *r" << int(inst.rs);
        break;
      case Opcode::Ret:
        oss << "ret";
        break;
      case Opcode::Syscall:
        oss << "syscall $" << inst.imm;
        break;
    }
    return oss.str();
}

} // namespace flowguard::isa
