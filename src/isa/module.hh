/**
 * @file
 * Pre-link program containers: modules, functions, data objects and the
 * link-time fixups connecting them. These stand in for ELF objects; the
 * Loader turns a set of Modules into a runnable Program, synthesizing
 * PLT stubs and GOT slots for inter-module calls exactly as the dynamic
 * linker would (the paper's inter-module CFG edges flow through these).
 */

#ifndef FLOWGUARD_ISA_MODULE_HH
#define FLOWGUARD_ISA_MODULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/insts.hh"

namespace flowguard::isa {

/** ELF-like module classes; Vdso symbols take resolution precedence. */
enum class ModuleKind : uint8_t { Executable, SharedLib, Vdso };

/**
 * Relocation inside a data object: at `offset`, store the absolute
 * run-time address of `symbol` (8 bytes, little endian). Function-
 * pointer dispatch tables are built from these, and the static analysis
 * reads them back to enumerate address-taken functions.
 */
struct DataReloc
{
    uint64_t offset = 0;
    std::string symbol;
    /**
     * When true the symbol is resolved in global interposition order
     * (used for GOT slots); otherwise same-module definitions win
     * (used for e.g. static function-pointer tables).
     */
    bool global = false;
};

/** A named chunk of initialized data in a module's data segment. */
struct DataObject
{
    std::string name;
    bool exported = false;
    uint64_t offset = 0;            ///< within the module data segment
    std::vector<uint8_t> bytes;
    std::vector<DataReloc> relocs;
};

/** Which instruction field a fixup patches. */
enum class FixupField : uint8_t { Target, Imm };

/** Link-time fixup kinds left unresolved by the ModuleBuilder. */
enum class FixupKind : uint8_t {
    AddCodeBase,    ///< field += module code base (local code address)
    AddDataBase,    ///< field += module data base (local data address)
    PltCall,        ///< target = this module's PLT stub for `symbol`
    ExtFuncAddr,    ///< field = resolved address of external function
    ExtDataAddr,    ///< field = resolved address of external data
};

/** One link-time fixup on one instruction operand. */
struct Fixup
{
    uint32_t instIndex = 0;
    FixupKind kind = FixupKind::AddCodeBase;
    FixupField field = FixupField::Target;
    std::string symbol;
};

/** A contiguous run of instructions with a named entry point. */
struct Function
{
    std::string name;
    bool exported = false;
    bool isPltStub = false;
    uint32_t firstInst = 0;
    uint32_t numInsts = 0;
    uint64_t offset = 0;            ///< entry offset within code segment
};

/**
 * Analysis hint standing in for Dyninst's jump-table pattern matching:
 * the JmpInd at module-relative `instOffset` dispatches through the
 * data object `table`, reading `count` 8-byte function pointers.
 */
struct JumpTableHint
{
    uint64_t instOffset = 0;
    std::string table;
    uint32_t count = 0;
};

/** A pre-link module: code, data, exports, DT_NEEDED list, fixups. */
struct Module
{
    std::string name;
    ModuleKind kind = ModuleKind::Executable;

    std::vector<Instruction> code;
    std::vector<uint64_t> instOffsets;  ///< module-relative, per inst
    std::vector<Function> functions;
    std::vector<DataObject> data;
    std::vector<Fixup> fixups;
    std::vector<std::string> needed;    ///< DT_NEEDED order
    std::vector<JumpTableHint> jumpTables;

    uint64_t codeSize = 0;
    uint64_t dataSize = 0;

    /** Finds a function by name, or nullptr. */
    const Function *findFunction(const std::string &fname) const;

    /** Finds a data object by name, or nullptr. */
    const DataObject *findData(const std::string &dname) const;
};

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_MODULE_HH
