#include "isa/program.hh"

#include <algorithm>

#include "support/logging.hh"

namespace flowguard::isa {

const Instruction *
Program::fetch(uint64_t addr) const
{
    auto it = _addrToInst.find(addr);
    if (it == _addrToInst.end())
        return nullptr;
    return &_insts[it->second];
}

int
Program::moduleIndexAt(uint64_t addr) const
{
    for (size_t i = 0; i < _modules.size(); ++i) {
        const auto &mod = _modules[i];
        if (addr >= mod.codeBase && addr < mod.codeEnd)
            return static_cast<int>(i);
    }
    return -1;
}

const LoadedFunction *
Program::functionAt(uint64_t addr) const
{
    // _functions is sorted by entry; find the last entry <= addr.
    auto it = std::upper_bound(
        _functions.begin(), _functions.end(), addr,
        [](uint64_t a, const LoadedFunction &fn) { return a < fn.entry; });
    if (it == _functions.begin())
        return nullptr;
    --it;
    if (addr >= it->entry && addr < it->end)
        return &*it;
    return nullptr;
}

bool
Program::isCode(uint64_t addr) const
{
    return moduleIndexAt(addr) >= 0;
}

std::optional<uint32_t>
Program::instIndexAt(uint64_t addr) const
{
    auto it = _addrToInst.find(addr);
    if (it == _addrToInst.end())
        return std::nullopt;
    return it->second;
}

uint64_t
Program::nextAddr(uint64_t addr) const
{
    const Instruction *inst = fetch(addr);
    fg_assert(inst, "nextAddr of a non-code address");
    return addr + instSize(inst->op);
}

uint64_t
Program::funcAddr(const std::string &mod, const std::string &func) const
{
    for (const auto &lm : _modules) {
        if (lm.name != mod)
            continue;
        auto it = lm.funcAddrs.find(func);
        if (it == lm.funcAddrs.end())
            fg_fatal("no function '", func, "' in module '", mod, "'");
        return it->second;
    }
    fg_fatal("no module '", mod, "' in program");
}

uint64_t
Program::dataAddr(const std::string &mod, const std::string &obj) const
{
    for (const auto &lm : _modules) {
        if (lm.name != mod)
            continue;
        auto it = lm.dataAddrs.find(obj);
        if (it == lm.dataAddrs.end())
            fg_fatal("no data object '", obj, "' in module '", mod, "'");
        return it->second;
    }
    fg_fatal("no module '", mod, "' in program");
}

} // namespace flowguard::isa
