#include "isa/syscalls.hh"

namespace flowguard::isa {

const char *
syscallName(int64_t number)
{
    switch (static_cast<Syscall>(number)) {
      case Syscall::Read: return "read";
      case Syscall::Write: return "write";
      case Syscall::Open: return "open";
      case Syscall::Close: return "close";
      case Syscall::Mmap: return "mmap";
      case Syscall::Mprotect: return "mprotect";
      case Syscall::Sigaction: return "sigaction";
      case Syscall::Sigreturn: return "sigreturn";
      case Syscall::Execve: return "execve";
      case Syscall::Exit: return "exit";
      case Syscall::Gettimeofday: return "gettimeofday";
      case Syscall::Socket: return "socket";
      case Syscall::Accept: return "accept";
      case Syscall::Send: return "send";
      case Syscall::Recv: return "recv";
      case Syscall::DlOpen: return "dlopen";
      case Syscall::DlClose: return "dlclose";
      case Syscall::JitMap: return "jit_map";
      case Syscall::JitUnmap: return "jit_unmap";
    }
    return "unknown";
}

} // namespace flowguard::isa
