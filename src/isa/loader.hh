/**
 * @file
 * Loader — the dynamic linker of the simulator.
 *
 * Lays out modules in the address space, synthesizes PLT stubs + GOT
 * slots for inter-module calls, resolves symbols with ELF-style
 * interposition (first exporter in load order wins) and VDSO
 * precedence for functions the VDSO provides (per §4.1 of the paper),
 * applies relocations, and emits a runnable Program.
 */

#ifndef FLOWGUARD_ISA_LOADER_HH
#define FLOWGUARD_ISA_LOADER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/module.hh"
#include "isa/program.hh"

namespace flowguard::isa {

/**
 * Address-space layout policy. The fixed and randomized paths share
 * this one struct: the classic constants are the defaults, and
 * `randomize` adds a seeded, page-aligned slide per module arena.
 * Slides are bounded by `maxSlidePages` so arenas stay disjoint
 * (32 MiB of slide against a 256 MiB library stride and a ~127 MiB
 * vdso-to-stack gap).
 */
struct LayoutPolicy
{
    uint64_t execBase = 0x400000;
    uint64_t libBase = 0x7f0000000000ULL;
    uint64_t libStride = 0x10000000ULL;
    uint64_t vdsoBase = 0x7ffff7ff0000ULL;
    uint64_t stackTop = 0x7ffffffff000ULL;
    uint64_t stackSize = 1ULL << 20;
    bool randomize = false;
    uint64_t seed = 0;
    uint64_t maxSlidePages = 0x2000;    ///< 32 MiB at 4 KiB pages

    static LayoutPolicy fixed() { return {}; }

    static LayoutPolicy
    randomized(uint64_t seed)
    {
        LayoutPolicy policy;
        policy.randomize = true;
        policy.seed = seed;
        return policy;
    }
};

class Loader
{
  public:
    Loader() = default;

    /** Sets the executable module (exactly one, required). */
    Loader &addExecutable(Module mod);

    /** Adds a shared library; load order defines interposition order. */
    Loader &addLibrary(Module mod);

    /** Sets the VDSO module (optional; at most one). */
    Loader &addVdso(Module mod);

    /** Name of the entry function in the executable (default "main"). */
    Loader &entryFunction(std::string name);

    /** Distinguishes processes for CR3 trace filtering (default 1). */
    Loader &cr3(uint64_t value);

    /** Address-space layout (default LayoutPolicy::fixed()). */
    Loader &layout(LayoutPolicy policy);

    /** Links everything into a Program. Consumes the loader. */
    Program link();

  private:
    struct Resolved
    {
        bool found = false;
        uint64_t addr = 0;
    };

    void synthesizePlt(Module &mod);
    Resolved resolveFunc(const std::string &symbol) const;
    Resolved resolveData(const std::string &symbol) const;
    /** Local definitions shadow global ones for data relocations. */
    Resolved resolveForModule(size_t moduleIndex,
                              const std::string &symbol) const;

    std::vector<Module> _mods;       ///< [0] = executable
    std::vector<size_t> _order;      ///< resolution order into _mods
    int _vdsoIndex = -1;
    bool _haveExecutable = false;
    std::string _entryName = "main";
    uint64_t _cr3 = 1;
    LayoutPolicy _layout;

    /** Filled during link(): absolute bases per module. */
    std::vector<uint64_t> _codeBases;
    std::vector<uint64_t> _dataBases;
};

/** Address-space layout constants. */
namespace layout {

constexpr uint64_t exec_base = 0x400000;
constexpr uint64_t lib_base = 0x7f0000000000ULL;
constexpr uint64_t lib_stride = 0x10000000ULL;
constexpr uint64_t vdso_base = 0x7ffff7ff0000ULL;
constexpr uint64_t stack_top = 0x7ffffffff000ULL;
constexpr uint64_t stack_size = 1ULL << 20;
constexpr uint64_t mmap_base = 0x100000000ULL;
constexpr uint64_t jit_base = 0x200000000ULL;
constexpr uint64_t page = 0x1000;

} // namespace layout

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_LOADER_HH
