#include "isa/builder.hh"

#include "support/logging.hh"

namespace flowguard::isa {

ModuleBuilder::ModuleBuilder(std::string name, ModuleKind kind)
{
    _mod.name = std::move(name);
    _mod.kind = kind;
}

ModuleBuilder &
ModuleBuilder::needs(const std::string &lib)
{
    _mod.needed.push_back(lib);
    return *this;
}

ModuleBuilder &
ModuleBuilder::function(const std::string &name, bool exported)
{
    if (!_mod.functions.empty()) {
        auto &prev = _mod.functions.back();
        prev.numInsts =
            static_cast<uint32_t>(_mod.code.size()) - prev.firstInst;
    }
    Function fn;
    fn.name = name;
    fn.exported = exported;
    fn.firstInst = static_cast<uint32_t>(_mod.code.size());
    fn.offset = _offset;
    _mod.functions.push_back(std::move(fn));
    _labels.emplace_back();
    return *this;
}

void
ModuleBuilder::requireFunction() const
{
    if (_mod.functions.empty())
        fg_fatal("instruction emitted outside any function in module ",
                 _mod.name);
}

Instruction &
ModuleBuilder::append(Opcode op)
{
    requireFunction();
    Instruction inst;
    inst.op = op;
    _mod.instOffsets.push_back(_offset);
    _offset += instSize(op);
    _mod.code.push_back(inst);
    return _mod.code.back();
}

ModuleBuilder &
ModuleBuilder::label(const std::string &name)
{
    requireFunction();
    auto &table = _labels.back();
    if (!table.emplace(name, _offset).second)
        fg_fatal("duplicate label '", name, "' in ",
                 _mod.functions.back().name);
    return *this;
}

ModuleBuilder &
ModuleBuilder::nop()
{
    append(Opcode::Nop);
    return *this;
}

ModuleBuilder &
ModuleBuilder::alu(AluOp op, int rd, int rs)
{
    auto &inst = append(Opcode::Alu);
    inst.aluOp = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs = static_cast<uint8_t>(rs);
    return *this;
}

ModuleBuilder &
ModuleBuilder::aluImm(AluOp op, int rd, int64_t imm)
{
    auto &inst = append(Opcode::AluImm);
    inst.aluOp = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm = imm;
    return *this;
}

ModuleBuilder &
ModuleBuilder::movImm(int rd, int64_t imm)
{
    auto &inst = append(Opcode::MovImm);
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm = imm;
    return *this;
}

ModuleBuilder &
ModuleBuilder::movImmFunc(int rd, const std::string &symbol)
{
    movImm(rd, 0);
    PendingLocalRef ref;
    ref.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    ref.field = FixupField::Imm;
    ref.name = symbol;
    ref.functionIndex =
        static_cast<uint32_t>(_mod.functions.size() - 1);
    ref.labelOnly = false;
    _funcAddrRefs.push_back(std::move(ref));
    return *this;
}

ModuleBuilder &
ModuleBuilder::movImmData(int rd, const std::string &symbol)
{
    movImm(rd, 0);
    PendingLocalRef ref;
    ref.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    ref.field = FixupField::Imm;
    ref.name = symbol;
    ref.functionIndex =
        static_cast<uint32_t>(_mod.functions.size() - 1);
    ref.labelOnly = false;
    _dataAddrRefs.push_back(std::move(ref));
    return *this;
}

ModuleBuilder &
ModuleBuilder::movReg(int rd, int rs)
{
    auto &inst = append(Opcode::MovReg);
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs = static_cast<uint8_t>(rs);
    return *this;
}

ModuleBuilder &
ModuleBuilder::load(int rd, int rs, int64_t offset)
{
    auto &inst = append(Opcode::Load);
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs = static_cast<uint8_t>(rs);
    inst.imm = offset;
    return *this;
}

ModuleBuilder &
ModuleBuilder::store(int rd, int64_t offset, int rs)
{
    auto &inst = append(Opcode::Store);
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs = static_cast<uint8_t>(rs);
    inst.imm = offset;
    return *this;
}

ModuleBuilder &
ModuleBuilder::cmp(int rd, int rs)
{
    auto &inst = append(Opcode::Cmp);
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs = static_cast<uint8_t>(rs);
    return *this;
}

ModuleBuilder &
ModuleBuilder::cmpImm(int rd, int64_t imm)
{
    auto &inst = append(Opcode::CmpImm);
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm = imm;
    return *this;
}

ModuleBuilder &
ModuleBuilder::jcc(Cond cond, const std::string &target)
{
    auto &inst = append(Opcode::Jcc);
    inst.cond = cond;
    PendingLocalRef ref;
    ref.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    ref.field = FixupField::Target;
    ref.name = target;
    ref.functionIndex =
        static_cast<uint32_t>(_mod.functions.size() - 1);
    ref.labelOnly = true;
    _localRefs.push_back(std::move(ref));
    return *this;
}

ModuleBuilder &
ModuleBuilder::jmp(const std::string &labelOrFunc)
{
    append(Opcode::Jmp);
    PendingLocalRef ref;
    ref.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    ref.field = FixupField::Target;
    ref.name = labelOrFunc;
    ref.functionIndex =
        static_cast<uint32_t>(_mod.functions.size() - 1);
    ref.labelOnly = false;
    _localRefs.push_back(std::move(ref));
    return *this;
}

ModuleBuilder &
ModuleBuilder::jmpInd(int rs)
{
    auto &inst = append(Opcode::JmpInd);
    inst.rs = static_cast<uint8_t>(rs);
    return *this;
}

ModuleBuilder &
ModuleBuilder::call(const std::string &func)
{
    append(Opcode::Call);
    PendingLocalRef ref;
    ref.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    ref.field = FixupField::Target;
    ref.name = func;
    ref.functionIndex =
        static_cast<uint32_t>(_mod.functions.size() - 1);
    ref.labelOnly = false;
    _localRefs.push_back(std::move(ref));
    return *this;
}

ModuleBuilder &
ModuleBuilder::callExt(const std::string &symbol)
{
    append(Opcode::Call);
    Fixup fx;
    fx.instIndex = static_cast<uint32_t>(_mod.code.size() - 1);
    fx.kind = FixupKind::PltCall;
    fx.field = FixupField::Target;
    fx.symbol = symbol;
    _mod.fixups.push_back(std::move(fx));
    return *this;
}

ModuleBuilder &
ModuleBuilder::callInd(int rs)
{
    auto &inst = append(Opcode::CallInd);
    inst.rs = static_cast<uint8_t>(rs);
    return *this;
}

ModuleBuilder &
ModuleBuilder::ret()
{
    append(Opcode::Ret);
    return *this;
}

ModuleBuilder &
ModuleBuilder::syscall(int64_t number)
{
    auto &inst = append(Opcode::Syscall);
    inst.imm = number;
    return *this;
}

ModuleBuilder &
ModuleBuilder::halt()
{
    append(Opcode::Halt);
    return *this;
}

ModuleBuilder &
ModuleBuilder::dataObject(const std::string &name,
                          std::vector<uint8_t> bytes,
                          std::vector<DataReloc> relocs, bool exported)
{
    DataObject obj;
    obj.name = name;
    obj.exported = exported;
    obj.offset = _mod.dataSize;
    obj.bytes = std::move(bytes);
    obj.relocs = std::move(relocs);
    _mod.dataSize += (obj.bytes.size() + 7) & ~uint64_t{7};
    _mod.data.push_back(std::move(obj));
    return *this;
}

ModuleBuilder &
ModuleBuilder::dataBss(const std::string &name, uint64_t size,
                       bool exported)
{
    return dataObject(name, std::vector<uint8_t>(size, 0), {}, exported);
}

ModuleBuilder &
ModuleBuilder::funcPtrTable(const std::string &name,
                            const std::vector<std::string> &symbols,
                            bool exported)
{
    std::vector<uint8_t> bytes(symbols.size() * 8, 0);
    std::vector<DataReloc> relocs;
    relocs.reserve(symbols.size());
    for (size_t i = 0; i < symbols.size(); ++i)
        relocs.push_back({i * 8, symbols[i]});
    return dataObject(name, std::move(bytes), std::move(relocs),
                      exported);
}

ModuleBuilder &
ModuleBuilder::jumpTableHint(const std::string &table, uint32_t count)
{
    fg_assert(!_mod.code.empty() &&
                  _mod.code.back().op == Opcode::JmpInd,
              "jumpTableHint must follow a JmpInd");
    JumpTableHint hint;
    hint.instOffset = _mod.instOffsets.back();
    hint.table = table;
    hint.count = count;
    _mod.jumpTables.push_back(std::move(hint));
    return *this;
}

Module
ModuleBuilder::build()
{
    fg_assert(!_built, "ModuleBuilder::build called twice");
    _built = true;

    if (!_mod.functions.empty()) {
        auto &last = _mod.functions.back();
        last.numInsts =
            static_cast<uint32_t>(_mod.code.size()) - last.firstInst;
    }
    _mod.codeSize = _offset;

    // Resolve branches to local labels / same-module functions.
    for (const auto &ref : _localRefs) {
        const auto &table = _labels[ref.functionIndex];
        uint64_t offset = 0;
        auto it = table.find(ref.name);
        if (it != table.end()) {
            offset = it->second;
        } else if (!ref.labelOnly) {
            const Function *fn = _mod.findFunction(ref.name);
            if (!fn) {
                fg_fatal("unresolved local branch target '", ref.name,
                         "' in module ", _mod.name);
            }
            offset = fn->offset;
        } else {
            fg_fatal("unresolved label '", ref.name, "' in module ",
                     _mod.name);
        }
        _mod.code[ref.instIndex].target = offset;
        _mod.fixups.push_back({ref.instIndex, FixupKind::AddCodeBase,
                               FixupField::Target, {}});
    }

    // Address-of-function references: local if defined here, else
    // imported.
    for (const auto &ref : _funcAddrRefs) {
        if (const Function *fn = _mod.findFunction(ref.name)) {
            _mod.code[ref.instIndex].imm =
                static_cast<int64_t>(fn->offset);
            _mod.fixups.push_back({ref.instIndex, FixupKind::AddCodeBase,
                                   FixupField::Imm, {}});
        } else {
            _mod.fixups.push_back({ref.instIndex, FixupKind::ExtFuncAddr,
                                   FixupField::Imm, ref.name});
        }
    }

    // Address-of-data references, same local/imported split.
    for (const auto &ref : _dataAddrRefs) {
        if (const DataObject *obj = _mod.findData(ref.name)) {
            _mod.code[ref.instIndex].imm =
                static_cast<int64_t>(obj->offset);
            _mod.fixups.push_back({ref.instIndex, FixupKind::AddDataBase,
                                   FixupField::Imm, {}});
        } else {
            _mod.fixups.push_back({ref.instIndex, FixupKind::ExtDataAddr,
                                   FixupField::Imm, ref.name});
        }
    }

    return std::move(_mod);
}

} // namespace flowguard::isa
