/**
 * @file
 * Syscall numbers understood by the kernel simulator. Values follow the
 * Linux x86-64 ABI where one exists, since the paper's endpoint set is
 * expressed in terms of Linux syscalls.
 */

#ifndef FLOWGUARD_ISA_SYSCALLS_HH
#define FLOWGUARD_ISA_SYSCALLS_HH

#include <cstdint>

namespace flowguard::isa {

enum class Syscall : int64_t {
    Read = 0,
    Write = 1,
    Open = 2,
    Close = 3,
    Mmap = 9,
    Mprotect = 10,
    Sigaction = 13,
    Sigreturn = 15,
    Execve = 59,
    Exit = 60,
    Gettimeofday = 96,
    Socket = 41,
    Accept = 43,
    Send = 44,
    Recv = 45,
    // Simulated loader/JIT hooks (no Linux equivalent — the real
    // system hooks dlopen/dlclose and anonymous-executable mmap; we
    // model them as dedicated syscalls so the FlowGuard kernel sees
    // the same event stream a loader shim would deliver).
    DlOpen = 600,
    DlClose = 601,
    JitMap = 602,
    JitUnmap = 603,
};

/** Human-readable syscall name ("write", "mprotect", ...). */
const char *syscallName(int64_t number);

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_SYSCALLS_HH
