#include "isa/loader.hh"

#include <algorithm>
#include <set>

#include "support/logging.hh"
#include "support/random.hh"

namespace flowguard::isa {

namespace {

uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/**
 * Relocation-invariant module content hash. Runs over the pre-fixup
 * instruction stream (module-local offsets only), symbol names, and
 * data images, so the same module produces the same fingerprint under
 * any base assignment — the anchor that lets per-module profiles
 * survive ASLR and rebasing.
 */
uint64_t
moduleFingerprint(const Module &mod)
{
    uint64_t state = 0xf1061c0de5eedULL;
    uint64_t fp = 0;
    auto mix = [&](uint64_t value) {
        state ^= value;
        fp = splitmix64(state);
    };
    auto mixStr = [&](const std::string &s) {
        uint64_t h = 0xcbf29ce484222325ULL;     // FNV-1a
        for (char c : s)
            h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
        mix(h);
    };

    mixStr(mod.name);
    mix(static_cast<uint64_t>(mod.kind));
    mix(mod.codeSize);
    mix(mod.dataSize);
    for (size_t k = 0; k < mod.code.size(); ++k) {
        const Instruction &inst = mod.code[k];
        mix(static_cast<uint64_t>(inst.op));
        mix(static_cast<uint64_t>(inst.rd));
        mix(static_cast<uint64_t>(inst.rs));
        mix(static_cast<uint64_t>(inst.imm));
        mix(inst.target);
        mix(mod.instOffsets[k]);
    }
    for (const auto &fn : mod.functions) {
        mixStr(fn.name);
        mix(fn.offset);
        mix(fn.numInsts);
        mix(fn.exported ? 1 : 0);
    }
    for (const auto &fx : mod.fixups) {
        mix(static_cast<uint64_t>(fx.kind));
        mix(static_cast<uint64_t>(fx.field));
        mix(fx.instIndex);
        mixStr(fx.symbol);
    }
    for (const auto &obj : mod.data) {
        mixStr(obj.name);
        mix(obj.offset);
        for (uint8_t b : obj.bytes)
            mix(b);
        for (const auto &reloc : obj.relocs) {
            mix(reloc.offset);
            mixStr(reloc.symbol);
            mix(reloc.global ? 1 : 0);
        }
    }
    return fp;
}

void
writeLe64(std::vector<uint8_t> &bytes, uint64_t offset, uint64_t value)
{
    fg_assert(offset + 8 <= bytes.size(), "relocation out of range");
    for (int i = 0; i < 8; ++i)
        bytes[offset + i] = static_cast<uint8_t>(value >> (8 * i));
}

} // namespace

Loader &
Loader::addExecutable(Module mod)
{
    fg_assert(!_haveExecutable, "only one executable per program");
    fg_assert(mod.kind == ModuleKind::Executable,
              "addExecutable requires an Executable module");
    _mods.insert(_mods.begin(), std::move(mod));
    if (_vdsoIndex >= 0)
        ++_vdsoIndex;
    _haveExecutable = true;
    return *this;
}

Loader &
Loader::addLibrary(Module mod)
{
    fg_assert(mod.kind == ModuleKind::SharedLib,
              "addLibrary requires a SharedLib module");
    _mods.push_back(std::move(mod));
    return *this;
}

Loader &
Loader::addVdso(Module mod)
{
    fg_assert(_vdsoIndex < 0, "only one VDSO per program");
    fg_assert(mod.kind == ModuleKind::Vdso,
              "addVdso requires a Vdso module");
    _mods.push_back(std::move(mod));
    _vdsoIndex = static_cast<int>(_mods.size() - 1);
    return *this;
}

Loader &
Loader::entryFunction(std::string name)
{
    _entryName = std::move(name);
    return *this;
}

Loader &
Loader::cr3(uint64_t value)
{
    _cr3 = value;
    return *this;
}

Loader &
Loader::layout(LayoutPolicy policy)
{
    _layout = policy;
    return *this;
}

void
Loader::synthesizePlt(Module &mod)
{
    // Collect the distinct imported symbols, keeping fixup order.
    std::vector<std::string> symbols;
    std::set<std::string> seen;
    for (const auto &fx : mod.fixups) {
        if (fx.kind == FixupKind::PltCall && seen.insert(fx.symbol).second)
            symbols.push_back(fx.symbol);
    }
    if (symbols.empty())
        return;

    std::unordered_map<std::string, uint64_t> stubOffsets;
    for (const auto &sym : symbols) {
        // GOT slot holding the globally resolved address of `sym`.
        DataObject got;
        got.name = "got." + sym;
        got.exported = false;
        got.offset = mod.dataSize;
        got.bytes.assign(8, 0);
        got.relocs.push_back({0, sym, /*global=*/true});
        mod.dataSize += 8;
        const uint64_t got_offset = got.offset;
        mod.data.push_back(std::move(got));

        // Stub: movi r15, &got; load r15, [r15]; jmp *r15
        Function stub;
        stub.name = sym + "@plt";
        stub.exported = false;
        stub.isPltStub = true;
        stub.firstInst = static_cast<uint32_t>(mod.code.size());
        stub.offset = mod.codeSize;
        stubOffsets[sym] = stub.offset;

        Instruction movi;
        movi.op = Opcode::MovImm;
        movi.rd = plt_scratch_reg;
        movi.imm = static_cast<int64_t>(got_offset);
        mod.instOffsets.push_back(mod.codeSize);
        mod.fixups.push_back(
            {static_cast<uint32_t>(mod.code.size()),
             FixupKind::AddDataBase, FixupField::Imm, {}});
        mod.code.push_back(movi);
        mod.codeSize += instSize(Opcode::MovImm);

        Instruction load;
        load.op = Opcode::Load;
        load.rd = plt_scratch_reg;
        load.rs = plt_scratch_reg;
        load.imm = 0;
        mod.instOffsets.push_back(mod.codeSize);
        mod.code.push_back(load);
        mod.codeSize += instSize(Opcode::Load);

        Instruction jmp;
        jmp.op = Opcode::JmpInd;
        jmp.rs = plt_scratch_reg;
        mod.instOffsets.push_back(mod.codeSize);
        mod.code.push_back(jmp);
        mod.codeSize += instSize(Opcode::JmpInd);

        stub.numInsts = 3;
        mod.functions.push_back(std::move(stub));
    }

    // Retarget the original calls at their module-local stubs.
    for (auto &fx : mod.fixups) {
        if (fx.kind != FixupKind::PltCall)
            continue;
        mod.code[fx.instIndex].target = stubOffsets.at(fx.symbol);
        fx.kind = FixupKind::AddCodeBase;
        fx.symbol.clear();
    }
}

Loader::Resolved
Loader::resolveFunc(const std::string &symbol) const
{
    // VDSO-provided functions take precedence (paper §4.1); then the
    // executable, then libraries in load order (interposition).
    if (_vdsoIndex >= 0) {
        const auto &vdso = _mods[_vdsoIndex];
        if (const Function *fn = vdso.findFunction(symbol);
            fn && fn->exported) {
            return {true, _codeBases[_vdsoIndex] + fn->offset};
        }
    }
    for (size_t i = 0; i < _mods.size(); ++i) {
        if (static_cast<int>(i) == _vdsoIndex)
            continue;
        if (const Function *fn = _mods[i].findFunction(symbol);
            fn && fn->exported) {
            return {true, _codeBases[i] + fn->offset};
        }
    }
    return {};
}

Loader::Resolved
Loader::resolveData(const std::string &symbol) const
{
    for (size_t i = 0; i < _mods.size(); ++i) {
        if (const DataObject *obj = _mods[i].findData(symbol);
            obj && obj->exported) {
            return {true, _dataBases[i] + obj->offset};
        }
    }
    return {};
}

Loader::Resolved
Loader::resolveForModule(size_t moduleIndex,
                         const std::string &symbol) const
{
    const Module &mod = _mods[moduleIndex];
    if (const Function *fn = mod.findFunction(symbol))
        return {true, _codeBases[moduleIndex] + fn->offset};
    if (const DataObject *obj = mod.findData(symbol))
        return {true, _dataBases[moduleIndex] + obj->offset};
    if (Resolved r = resolveFunc(symbol); r.found)
        return r;
    return resolveData(symbol);
}

Program
Loader::link()
{
    fg_assert(_haveExecutable, "program has no executable");

    for (auto &mod : _mods)
        synthesizePlt(mod);

    // --- base assignment ------------------------------------------------
    // Fixed and randomized layouts share one path: the policy supplies
    // the arena anchors, and `randomize` adds one seeded page-aligned
    // slide per module (one Rng draw per module, in load order, so a
    // given seed always reproduces the same layout).
    _codeBases.assign(_mods.size(), 0);
    _dataBases.assign(_mods.size(), 0);
    Rng aslr(_layout.seed);
    auto slide = [&]() -> uint64_t {
        if (!_layout.randomize)
            return 0;
        return aslr.below(_layout.maxSlidePages + 1) * layout::page;
    };
    size_t lib_index = 0;
    for (size_t i = 0; i < _mods.size(); ++i) {
        uint64_t base;
        switch (_mods[i].kind) {
          case ModuleKind::Executable:
            base = _layout.execBase + slide();
            break;
          case ModuleKind::SharedLib:
            base = _layout.libBase + lib_index++ * _layout.libStride +
                   slide();
            break;
          case ModuleKind::Vdso:
            base = _layout.vdsoBase + slide();
            break;
          default:
            fg_panic("bad module kind");
        }
        _codeBases[i] = base;
        _dataBases[i] = base +
            roundUp(std::max<uint64_t>(_mods[i].codeSize, 1),
                    layout::page) + layout::page;
    }

    Program prog;
    prog._cr3 = _cr3;
    prog._stackTop = _layout.stackTop;
    prog._stackSize = _layout.stackSize;

    // --- module tables ----------------------------------------------------
    for (size_t i = 0; i < _mods.size(); ++i) {
        const Module &mod = _mods[i];
        LoadedModule lm;
        lm.name = mod.name;
        lm.kind = mod.kind;
        lm.codeBase = _codeBases[i];
        lm.codeEnd = _codeBases[i] + std::max<uint64_t>(mod.codeSize, 1);
        lm.dataBase = _dataBases[i];
        lm.dataEnd = _dataBases[i] + std::max<uint64_t>(mod.dataSize, 1);
        lm.fingerprint = moduleFingerprint(mod);
        for (const auto &fn : mod.functions)
            lm.funcAddrs[fn.name] = lm.codeBase + fn.offset;
        for (const auto &obj : mod.data)
            lm.dataAddrs[obj.name] = lm.dataBase + obj.offset;
        prog._modules.push_back(std::move(lm));
    }

    // --- overlap check ----------------------------------------------------
    // Module images (code + data) and the stack must occupy disjoint
    // ranges under every layout, randomized or not.
    {
        std::vector<std::pair<uint64_t, uint64_t>> ranges;
        for (const auto &lm : prog._modules)
            ranges.emplace_back(lm.codeBase, lm.dataEnd);
        ranges.emplace_back(prog._stackTop - prog._stackSize,
                            prog._stackTop);
        std::sort(ranges.begin(), ranges.end());
        for (size_t i = 1; i < ranges.size(); ++i) {
            fg_assert(ranges[i - 1].second <= ranges[i].first,
                      "module/stack ranges overlap at link time");
        }
    }

    // --- instruction fixups -------------------------------------------
    std::vector<Module> &mods = _mods;
    for (size_t i = 0; i < mods.size(); ++i) {
        Module &mod = mods[i];
        for (const auto &fx : mod.fixups) {
            Instruction &inst = mod.code[fx.instIndex];
            auto apply = [&](uint64_t value, bool add) {
                if (fx.field == FixupField::Target) {
                    inst.target = add ? inst.target + value : value;
                } else {
                    inst.imm = add
                        ? inst.imm + static_cast<int64_t>(value)
                        : static_cast<int64_t>(value);
                }
            };
            switch (fx.kind) {
              case FixupKind::AddCodeBase:
                apply(_codeBases[i], true);
                break;
              case FixupKind::AddDataBase:
                apply(_dataBases[i], true);
                break;
              case FixupKind::ExtFuncAddr: {
                Resolved r = resolveFunc(fx.symbol);
                if (!r.found)
                    fg_fatal("unresolved function symbol '", fx.symbol,
                             "' referenced by ", mod.name);
                apply(r.addr, false);
                break;
              }
              case FixupKind::ExtDataAddr: {
                Resolved r = resolveData(fx.symbol);
                if (!r.found)
                    fg_fatal("unresolved data symbol '", fx.symbol,
                             "' referenced by ", mod.name);
                apply(r.addr, false);
                break;
              }
              case FixupKind::PltCall:
                fg_panic("PltCall fixup survived synthesizePlt");
            }
        }
    }

    // --- data images with relocations -----------------------------------
    for (size_t i = 0; i < mods.size(); ++i) {
        const Module &mod = mods[i];
        if (mod.dataSize == 0)
            continue;
        DataImage image;
        image.addr = _dataBases[i];
        image.bytes.assign(mod.dataSize, 0);
        for (const auto &obj : mod.data) {
            std::copy(obj.bytes.begin(), obj.bytes.end(),
                      image.bytes.begin() +
                          static_cast<int64_t>(obj.offset));
            for (const auto &reloc : obj.relocs) {
                Resolved r = reloc.global
                    ? resolveFunc(reloc.symbol)
                    : resolveForModule(i, reloc.symbol);
                if (!r.found && reloc.global)
                    r = resolveData(reloc.symbol);
                if (!r.found)
                    fg_fatal("unresolved reloc symbol '", reloc.symbol,
                             "' in data object ", mod.name, ":",
                             obj.name);
                writeLe64(image.bytes, obj.offset + reloc.offset,
                          r.addr);
            }
        }
        prog._initialData.push_back(std::move(image));
    }

    // --- flatten instructions and functions ------------------------------
    for (size_t i = 0; i < mods.size(); ++i) {
        const Module &mod = mods[i];
        for (size_t k = 0; k < mod.code.size(); ++k) {
            uint64_t addr = _codeBases[i] + mod.instOffsets[k];
            prog._addrToInst[addr] =
                static_cast<uint32_t>(prog._insts.size());
            prog._insts.push_back(mod.code[k]);
            prog._instAddrs.push_back(addr);
            prog._instModule.push_back(static_cast<uint32_t>(i));
        }
        for (const auto &fn : mod.functions) {
            LoadedFunction lf;
            lf.name = fn.name;
            lf.moduleIndex = static_cast<uint32_t>(i);
            lf.exported = fn.exported;
            lf.isPltStub = fn.isPltStub;
            lf.entry = _codeBases[i] + fn.offset;
            uint32_t end_inst = fn.firstInst + fn.numInsts;
            uint64_t end_off = end_inst < mod.instOffsets.size()
                ? mod.instOffsets[end_inst]
                : mod.codeSize;
            lf.end = _codeBases[i] + end_off;
            // Flat instruction indices: module instructions are appended
            // in order, so offset the module-local indices.
            lf.firstInst = static_cast<uint32_t>(
                prog._insts.size() - mod.code.size() + fn.firstInst);
            lf.numInsts = fn.numInsts;
            prog._functions.push_back(std::move(lf));
        }
        for (const auto &hint : mod.jumpTables) {
            Resolved r = resolveForModule(i, hint.table);
            if (!r.found)
                fg_fatal("unresolved jump table '", hint.table, "' in ",
                         mod.name);
            prog._jumpTables.push_back(
                {_codeBases[i] + hint.instOffset, r.addr, hint.count});
        }
    }
    std::sort(prog._functions.begin(), prog._functions.end(),
              [](const LoadedFunction &a, const LoadedFunction &b) {
                  return a.entry < b.entry;
              });

    // --- entry point ------------------------------------------------------
    const Module &exec = mods[0];
    const Function *entry_fn = exec.findFunction(_entryName);
    if (!entry_fn)
        fg_fatal("entry function '", _entryName, "' not found in ",
                 exec.name);
    prog._entry = _codeBases[0] + entry_fn->offset;

    return prog;
}

} // namespace flowguard::isa
