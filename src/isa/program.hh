/**
 * @file
 * Program — a fully linked, runnable image.
 *
 * Produced by the Loader from a set of Modules. Holds the flattened
 * instruction stream with absolute addresses, per-module code/data
 * ranges, the resolved symbol tables, the initial data image (GOT
 * slots and function-pointer tables already relocated), and the stack
 * layout. Code is immutable once linked (the W^X assumption of the
 * paper's threat model); the CPU copies `initialData()` into its
 * mutable memory at process start.
 */

#ifndef FLOWGUARD_ISA_PROGRAM_HH
#define FLOWGUARD_ISA_PROGRAM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/insts.hh"
#include "isa/module.hh"

namespace flowguard::isa {

/** A module after loading: absolute ranges plus symbol tables. */
struct LoadedModule
{
    std::string name;
    ModuleKind kind = ModuleKind::Executable;
    uint64_t codeBase = 0;
    uint64_t codeEnd = 0;
    uint64_t dataBase = 0;
    uint64_t dataEnd = 0;
    std::unordered_map<std::string, uint64_t> funcAddrs;
    std::unordered_map<std::string, uint64_t> dataAddrs;
    /** Relocation-invariant content hash: computed over the module's
     *  pre-fixup instructions, offsets, symbols and data, so the same
     *  module hashes identically under any base (ASLR / rebase). */
    uint64_t fingerprint = 0;
};

/** A function after loading, with absolute [entry, end) code range. */
struct LoadedFunction
{
    std::string name;
    uint32_t moduleIndex = 0;
    bool exported = false;
    bool isPltStub = false;
    uint64_t entry = 0;
    uint64_t end = 0;
    uint32_t firstInst = 0;
    uint32_t numInsts = 0;
};

/** Jump-table hint with addresses resolved (see JumpTableHint). */
struct LoadedJumpTable
{
    uint64_t jmpAddr = 0;
    uint64_t tableAddr = 0;
    uint32_t count = 0;
};

/** One relocated initial-data region. */
struct DataImage
{
    uint64_t addr = 0;
    std::vector<uint8_t> bytes;
};

class Program
{
  public:
    /** Decoded instruction at `addr`, or nullptr if not code. */
    const Instruction *fetch(uint64_t addr) const;

    /** Index of the module whose code range contains `addr`, or -1. */
    int moduleIndexAt(uint64_t addr) const;

    /** Function whose [entry, end) contains `addr`, or nullptr. */
    const LoadedFunction *functionAt(uint64_t addr) const;

    /** True if `addr` falls inside any module's code range. */
    bool isCode(uint64_t addr) const;

    /** Flat instruction index at `addr`, if `addr` is code. */
    std::optional<uint32_t> instIndexAt(uint64_t addr) const;

    /** Address of the instruction following the one at `addr`. */
    uint64_t nextAddr(uint64_t addr) const;

    const std::vector<LoadedModule> &modules() const { return _modules; }
    const std::vector<LoadedFunction> &functions() const
    {
        return _functions;
    }
    const std::vector<LoadedJumpTable> &jumpTables() const
    {
        return _jumpTables;
    }
    const std::vector<DataImage> &initialData() const
    {
        return _initialData;
    }

    size_t numInsts() const { return _insts.size(); }
    const Instruction &inst(size_t index) const { return _insts[index]; }
    uint64_t instAddr(size_t index) const { return _instAddrs[index]; }
    uint32_t instModule(size_t index) const { return _instModule[index]; }

    uint64_t entry() const { return _entry; }
    uint64_t stackTop() const { return _stackTop; }
    uint64_t stackSize() const { return _stackSize; }
    /** Process "CR3" — the page-table base the trace filter keys on. */
    uint64_t cr3() const { return _cr3; }

    /** Address of function `func` in module `mod` (fatal if absent). */
    uint64_t funcAddr(const std::string &mod,
                      const std::string &func) const;

    /** Address of data object `obj` in module `mod` (fatal if absent). */
    uint64_t dataAddr(const std::string &mod,
                      const std::string &obj) const;

  private:
    friend class Loader;

    std::vector<Instruction> _insts;
    std::vector<uint64_t> _instAddrs;      ///< parallel to _insts, sorted
    std::vector<uint32_t> _instModule;     ///< parallel to _insts
    std::unordered_map<uint64_t, uint32_t> _addrToInst;

    std::vector<LoadedModule> _modules;
    std::vector<LoadedFunction> _functions;  ///< sorted by entry
    std::vector<LoadedJumpTable> _jumpTables;
    std::vector<DataImage> _initialData;

    uint64_t _entry = 0;
    uint64_t _stackTop = 0;
    uint64_t _stackSize = 0;
    uint64_t _cr3 = 0;
};

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_PROGRAM_HH
