/**
 * @file
 * The synthetic instruction set.
 *
 * FlowGuard's problem statement is defined entirely by the control-flow
 * instruction taxonomy of Table 3 in the paper (direct vs. conditional
 * vs. indirect branches, near returns, far transfers). This ISA is a
 * minimal RISC-like set that reproduces exactly that taxonomy, plus
 * enough data movement for real programs — and real exploits — to run:
 * CALL pushes a return address to an in-memory stack that STORE can
 * overwrite, which is what makes ROP executable in the simulator.
 *
 * Instructions have variable byte sizes (like x86) so that addresses,
 * IP compression in TIP packets, and gadget offsets are non-trivial.
 */

#ifndef FLOWGUARD_ISA_INSTS_HH
#define FLOWGUARD_ISA_INSTS_HH

#include <cstdint>
#include <string>

namespace flowguard::isa {

/** Number of general-purpose registers (r0..r15). */
constexpr int num_regs = 16;

/** r0..r5 carry call arguments (r0 also carries return values). */
constexpr int num_arg_regs = 6;

/** r15 is reserved as the PLT scratch register by the loader. */
constexpr int plt_scratch_reg = 15;

/** r14 is the stack pointer by convention (CALL/RET use it). */
constexpr int sp_reg = 14;

/** Opcodes. The CoFI subset mirrors Table 3 of the paper. */
enum class Opcode : uint8_t {
    Nop,
    Alu,        ///< rd = rd <op> rs
    AluImm,     ///< rd = rd <op> imm
    MovImm,     ///< rd = imm (imm may be a code/data address)
    MovReg,     ///< rd = rs
    Load,       ///< rd = mem64[rs + imm]
    Store,      ///< mem64[rd + imm] = rs
    Cmp,        ///< flags = compare(rd, rs)
    CmpImm,     ///< flags = compare(rd, imm)
    Jcc,        ///< conditional direct branch (CoFI: TNT)
    Jmp,        ///< unconditional direct branch (CoFI: no packet)
    JmpInd,     ///< indirect branch via rs (CoFI: TIP)
    Call,       ///< direct call (CoFI: no packet)
    CallInd,    ///< indirect call via rs (CoFI: TIP)
    Ret,        ///< near return (CoFI: TIP)
    Syscall,    ///< far transfer to the kernel (imm = syscall number)
    Halt,       ///< stop the hart
};

/** ALU operations for Opcode::Alu / Opcode::AluImm. */
enum class AluOp : uint8_t { Add, Sub, Mul, Xor, And, Or, Shl, Shr };

/** Branch conditions for Opcode::Jcc, evaluated against CPU flags. */
enum class Cond : uint8_t { Eq, Ne, Lt, Ge, Gt, Le };

/**
 * A decoded instruction. `target` is an absolute code address for
 * direct branches (filled in by the loader); `imm` is the immediate /
 * displacement / syscall number.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    AluOp aluOp = AluOp::Add;
    Cond cond = Cond::Eq;
    uint8_t rd = 0;
    uint8_t rs = 0;
    int64_t imm = 0;
    uint64_t target = 0;

    /** True for every control-flow instruction (CoFI). */
    bool isCofi() const;

    /** True for indirect jmp/call and ret — the TIP-producing set. */
    bool isIndirect() const;

    /** True for Jcc — the TNT-producing set. */
    bool isConditional() const;

    /** True if execution cannot fall through (jmp/ret/halt). */
    bool endsFlow() const;
};

/** Encoded byte size of an instruction with the given opcode. */
int instSize(Opcode op);

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Mnemonic for an ALU operation. */
const char *aluOpName(AluOp op);

/** Mnemonic for a branch condition. */
const char *condName(Cond cond);

/** One-line disassembly of `inst` at address `pc`. */
std::string disassemble(const Instruction &inst, uint64_t pc);

} // namespace flowguard::isa

#endif // FLOWGUARD_ISA_INSTS_HH
