#include "isa/module.hh"

namespace flowguard::isa {

const Function *
Module::findFunction(const std::string &fname) const
{
    for (const auto &fn : functions)
        if (fn.name == fname)
            return &fn;
    return nullptr;
}

const DataObject *
Module::findData(const std::string &dname) const
{
    for (const auto &obj : data)
        if (obj.name == dname)
            return &obj;
    return nullptr;
}

} // namespace flowguard::isa
