/**
 * @file
 * Input mutation engine (§4.3 step 2) — "a balanced and
 * well-researched variety of traditional fuzzing strategies": bit and
 * byte flips, arithmetic nudges, interesting-value substitution,
 * havoc stacking (random edits, insertions, deletions, duplication)
 * and splicing of two corpus entries.
 */

#ifndef FLOWGUARD_FUZZ_MUTATOR_HH
#define FLOWGUARD_FUZZ_MUTATOR_HH

#include <cstdint>
#include <vector>

#include "support/random.hh"

namespace flowguard::fuzz {

using Input = std::vector<uint8_t>;

class Mutator
{
  public:
    explicit Mutator(Rng &rng)
        : _rng(rng)
    {}

    /** Applies one randomly selected strategy; never returns empty. */
    Input mutate(const Input &base);

    /** AFL-style splice: head of `a` + tail of `b`, then havoc. */
    Input splice(const Input &a, const Input &b);

    // Individual strategies, exposed for targeted testing.
    Input bitFlip(Input input);
    Input byteFlip(Input input);
    Input arith(Input input);
    Input interesting(Input input);
    Input havoc(Input input);

  private:
    Rng &_rng;
};

} // namespace flowguard::fuzz

#endif // FLOWGUARD_FUZZ_MUTATOR_HH
