/**
 * @file
 * Coverage-oriented fuzzer driver (§4.3 steps 1-2).
 *
 * Generic over a run callback — "the trained application runs in QEMU
 * with instrumentation on top" — which executes the target on an
 * input with a TraceSink attached. Inputs producing new coverage join
 * the queue for further mutation; the queue is the training corpus.
 */

#ifndef FLOWGUARD_FUZZ_FUZZER_HH
#define FLOWGUARD_FUZZ_FUZZER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fuzz/coverage.hh"
#include "fuzz/mutator.hh"
#include "support/random.hh"

namespace flowguard::fuzz {

/** Runs the target on `input` with `sink` observing branches. */
using RunTarget =
    std::function<void(const Input &input, cpu::TraceSink *sink)>;

/** A (executions, corpus size) sample for Figure 5(d)-style curves. */
struct FuzzProgressPoint
{
    uint64_t executions = 0;
    size_t corpusSize = 0;
    size_t coverageBits = 0;
};

class Fuzzer
{
  public:
    Fuzzer(RunTarget target, uint64_t seed = 1);

    /** Adds an initial test case. */
    void addSeed(Input input);

    /**
     * Runs `budget` target executions. Can be called repeatedly; the
     * corpus and coverage persist across calls.
     */
    void run(uint64_t budget);

    const std::vector<Input> &corpus() const { return _corpus; }
    uint64_t executions() const { return _executions; }
    size_t coverageBits() const { return _coverage.bitsSeen(); }
    const std::vector<FuzzProgressPoint> &history() const
    {
        return _history;
    }

  private:
    bool execute(const Input &input);

    RunTarget _target;
    Rng _rng;
    Mutator _mutator;
    GlobalCoverage _coverage;
    std::vector<Input> _corpus;
    size_t _queueCursor = 0;
    uint64_t _executions = 0;
    std::vector<FuzzProgressPoint> _history;
};

} // namespace flowguard::fuzz

#endif // FLOWGUARD_FUZZ_FUZZER_HH
