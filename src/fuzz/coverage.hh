/**
 * @file
 * AFL-style edge-coverage instrumentation (§4.3 step 1).
 *
 * The paper runs the trained application under QEMU user-mode with
 * instrumentation that "discovers any new state transition"; here the
 * interpreter plays QEMU and a TraceSink plays the instrumentation:
 * each retired branch hashes (prev_location, target) into a 64 KiB
 * hit-count map, hit counts are bucketed AFL-style, and an input is
 * interesting iff it flips a virgin bit.
 */

#ifndef FLOWGUARD_FUZZ_COVERAGE_HH
#define FLOWGUARD_FUZZ_COVERAGE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/events.hh"

namespace flowguard::fuzz {

constexpr size_t coverage_map_size = 1 << 16;

/** Per-run hit-count map filled by CoverageSink. */
class CoverageMap
{
  public:
    CoverageMap() { clear(); }

    void
    hit(size_t index)
    {
        uint8_t &cell = _map[index & (coverage_map_size - 1)];
        cell = static_cast<uint8_t>(cell + 1);
        if (cell == 0)
            cell = 255;     // saturate like AFL
    }

    void clear() { _map.fill(0); }

    const std::array<uint8_t, coverage_map_size> &raw() const
    {
        return _map;
    }

    /** Number of non-zero cells. */
    size_t populatedCells() const;

  private:
    std::array<uint8_t, coverage_map_size> _map;
};

/** Global virgin map accumulating bucketed coverage across runs. */
class GlobalCoverage
{
  public:
    GlobalCoverage() { _virgin.fill(0); }

    /**
     * Merges a run's (bucketed) map.
     * @retval true the run exposed a new state transition.
     */
    bool mergeAndCheckNew(const CoverageMap &map);

    /** Distinct (edge, bucket) bits seen so far. */
    size_t bitsSeen() const { return _bitsSeen; }

  private:
    std::array<uint8_t, coverage_map_size> _virgin;
    size_t _bitsSeen = 0;
};

/** TraceSink computing AFL edge hashes from retired branches. */
class CoverageSink : public cpu::TraceSink
{
  public:
    explicit CoverageSink(CoverageMap &map)
        : _map(map)
    {}

    void onBranch(const cpu::BranchEvent &event) override;

    /** Resets the prev-location state between runs. */
    void resetState() { _prev = 0; }

  private:
    CoverageMap &_map;
    uint64_t _prev = 0;
};

} // namespace flowguard::fuzz

#endif // FLOWGUARD_FUZZ_COVERAGE_HH
