/**
 * @file
 * Training-phase edge labeling (§4.3 step 3).
 *
 * Replays a fuzzing corpus on "real hardware" — the interpreter with
 * the IPT encoder attached — decodes the resulting packet streams at
 * the packet layer, and labels every ITC-CFG edge observed during
 * training with a high credit plus the TNT sequence seen along it.
 */

#ifndef FLOWGUARD_FUZZ_TRAINER_HH
#define FLOWGUARD_FUZZ_TRAINER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/itc_cfg.hh"
#include "analysis/path_index.hh"
#include "fuzz/fuzzer.hh"
#include "isa/program.hh"

namespace flowguard::telemetry {
class MetricRegistry;
} // namespace flowguard::telemetry

namespace flowguard::fuzz {

struct TrainingStats
{
    size_t inputsReplayed = 0;
    size_t transitionsSeen = 0;
    size_t edgesLabeled = 0;        ///< newly raised to high credit
    size_t unknownTransitions = 0;  ///< TIP pairs not in the ITC-CFG
};

/**
 * Replays `corpus` through `target` (which must attach the given sink
 * to a traced execution) and labels `itc`.
 */
TrainingStats trainItcCfg(analysis::ItcCfg &itc, const RunTarget &target,
                          const std::vector<Input> &corpus,
                          analysis::PathIndex *paths = nullptr);

/**
 * Labels the ITC-CFG from one already-captured packet buffer (used by
 * the runtime to cache slow-path verdicts back into the fast path).
 */
TrainingStats labelFromPackets(analysis::ItcCfg &itc,
                               const std::vector<uint8_t> &packets,
                               analysis::PathIndex *paths = nullptr);

/**
 * Publishes a TrainingStats into a MetricRegistry as a live source
 * (re-read at every collect()), same contract as the runtime's
 * register*Metrics helpers. The struct must outlive the registry.
 */
void registerTrainingMetrics(telemetry::MetricRegistry &registry,
                             const TrainingStats &stats,
                             const std::string &prefix);

} // namespace flowguard::fuzz

#endif // FLOWGUARD_FUZZ_TRAINER_HH
