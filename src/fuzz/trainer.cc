#include "fuzz/trainer.hh"

#include "decode/fast_decoder.hh"
#include "telemetry/metrics.hh"
#include "trace/ipt.hh"

namespace flowguard::fuzz {

namespace {

TrainingStats
labelFromFlow(analysis::ItcCfg &itc,
              const decode::FastDecodeResult &flow,
              analysis::PathIndex *paths)
{
    TrainingStats stats;
    auto transitions = decode::extractTipTransitions(flow);
    if (paths) {
        std::vector<uint64_t> targets;
        targets.reserve(transitions.size());
        for (const auto &transition : transitions)
            targets.push_back(transition.to);
        paths->observe(targets);
    }
    for (const auto &transition : transitions) {
        if (transition.from == 0)
            continue;
        ++stats.transitionsSeen;
        const int64_t edge =
            itc.findEdge(transition.from, transition.to);
        if (edge < 0) {
            ++stats.unknownTransitions;
            continue;
        }
        if (!itc.highCredit(edge)) {
            itc.setHighCredit(edge);
            ++stats.edgesLabeled;
        }
        itc.addTntSequence(edge, transition.tnt);
    }
    return stats;
}

} // namespace

TrainingStats
labelFromPackets(analysis::ItcCfg &itc,
                 const std::vector<uint8_t> &packets,
                 analysis::PathIndex *paths)
{
    auto flow = decode::decodePacketLayer(packets);
    return labelFromFlow(itc, flow, paths);
}

TrainingStats
trainItcCfg(analysis::ItcCfg &itc, const RunTarget &target,
            const std::vector<Input> &corpus,
            analysis::PathIndex *paths)
{
    TrainingStats total;
    for (const Input &input : corpus) {
        // Capture this input's full trace, generously buffered so the
        // training replay never loses history to a ToPA wrap.
        trace::Topa topa({1 << 22});
        trace::IptConfig config;
        trace::IptEncoder encoder(config, topa);
        target(input, &encoder);
        encoder.flushTnt();

        TrainingStats one =
            labelFromPackets(itc, topa.snapshot(), paths);
        ++total.inputsReplayed;
        total.transitionsSeen += one.transitionsSeen;
        total.edgesLabeled += one.edgesLabeled;
        total.unknownTransitions += one.unknownTransitions;
    }
    return total;
}

void
registerTrainingMetrics(telemetry::MetricRegistry &registry,
                        const TrainingStats &stats,
                        const std::string &prefix)
{
    registry.addSource(prefix, [&stats, prefix](
                                   telemetry::MetricRegistry &r) {
        auto c = [&](const char *name, uint64_t value) {
            r.counter(prefix + "." + name).set(value);
        };
        c("inputs_replayed", stats.inputsReplayed);
        c("transitions_seen", stats.transitionsSeen);
        c("edges_labeled", stats.edgesLabeled);
        c("unknown_transitions", stats.unknownTransitions);
    });
}

} // namespace flowguard::fuzz
