#include "fuzz/coverage.hh"

#include "support/random.hh"

namespace flowguard::fuzz {

namespace {

/** AFL's hit-count bucketing: 1,2,3,4-7,8-15,16-31,32-127,128+. */
uint8_t
bucket(uint8_t count)
{
    if (count == 0) return 0;
    if (count == 1) return 1 << 0;
    if (count == 2) return 1 << 1;
    if (count == 3) return 1 << 2;
    if (count <= 7) return 1 << 3;
    if (count <= 15) return 1 << 4;
    if (count <= 31) return 1 << 5;
    if (count <= 127) return 1 << 6;
    return 1 << 7;
}

uint64_t
hashLocation(uint64_t addr)
{
    uint64_t state = addr;
    return splitmix64(state);
}

} // namespace

size_t
CoverageMap::populatedCells() const
{
    size_t count = 0;
    for (uint8_t cell : _map)
        count += cell != 0;
    return count;
}

bool
GlobalCoverage::mergeAndCheckNew(const CoverageMap &map)
{
    bool found_new = false;
    const auto &raw = map.raw();
    for (size_t i = 0; i < coverage_map_size; ++i) {
        if (!raw[i])
            continue;
        const uint8_t bits = bucket(raw[i]);
        const uint8_t fresh =
            static_cast<uint8_t>(bits & ~_virgin[i]);
        if (fresh) {
            _virgin[i] |= fresh;
            _bitsSeen += static_cast<size_t>(__builtin_popcount(fresh));
            found_new = true;
        }
    }
    return found_new;
}

void
CoverageSink::onBranch(const cpu::BranchEvent &event)
{
    const uint64_t loc = hashLocation(event.target);
    _map.hit(static_cast<size_t>(loc ^ _prev));
    _prev = loc >> 1;
}

} // namespace flowguard::fuzz
