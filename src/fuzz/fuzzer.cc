#include "fuzz/fuzzer.hh"

#include "support/logging.hh"

namespace flowguard::fuzz {

Fuzzer::Fuzzer(RunTarget target, uint64_t seed)
    : _target(std::move(target)), _rng(seed), _mutator(_rng)
{
    fg_assert(_target, "fuzzer needs a run callback");
}

void
Fuzzer::addSeed(Input input)
{
    if (execute(input))
        _corpus.push_back(std::move(input));
    else if (_corpus.empty())
        _corpus.push_back(std::move(input));    // keep at least one
}

bool
Fuzzer::execute(const Input &input)
{
    CoverageMap map;
    CoverageSink sink(map);
    _target(input, &sink);
    ++_executions;
    const bool fresh = _coverage.mergeAndCheckNew(map);
    if (fresh || (_executions % 64) == 0) {
        _history.push_back(
            {_executions, _corpus.size() + (fresh ? 1 : 0),
             _coverage.bitsSeen()});
    }
    return fresh;
}

void
Fuzzer::run(uint64_t budget)
{
    fg_assert(!_corpus.empty(), "fuzzer needs at least one seed");
    for (uint64_t i = 0; i < budget; ++i) {
        // Round-robin over the queue, AFL-style, with occasional
        // splices between two corpus entries.
        const Input &base = _corpus[_queueCursor % _corpus.size()];
        ++_queueCursor;
        Input candidate;
        if (_corpus.size() >= 2 && _rng.chance(0.15)) {
            const Input &other = _corpus[_rng.below(_corpus.size())];
            candidate = _mutator.splice(base, other);
        } else {
            candidate = _mutator.mutate(base);
        }
        if (execute(candidate))
            _corpus.push_back(std::move(candidate));
    }
}

} // namespace flowguard::fuzz
