#include "fuzz/mutator.hh"

#include <algorithm>

namespace flowguard::fuzz {

namespace {

constexpr uint8_t interesting8[] = {0, 1, 16, 32, 64, 100, 127,
                                    128, 255};

} // namespace

Input
Mutator::bitFlip(Input input)
{
    if (input.empty())
        input.push_back(0);
    const size_t pos = _rng.below(input.size() * 8);
    input[pos / 8] ^= static_cast<uint8_t>(1u << (pos % 8));
    return input;
}

Input
Mutator::byteFlip(Input input)
{
    if (input.empty())
        input.push_back(0);
    input[_rng.below(input.size())] ^= 0xFF;
    return input;
}

Input
Mutator::arith(Input input)
{
    if (input.empty())
        input.push_back(0);
    const size_t pos = _rng.below(input.size());
    const int delta = static_cast<int>(_rng.range(1, 35));
    input[pos] = static_cast<uint8_t>(
        input[pos] + (_rng.chance(0.5) ? delta : -delta));
    return input;
}

Input
Mutator::interesting(Input input)
{
    if (input.empty())
        input.push_back(0);
    input[_rng.below(input.size())] =
        interesting8[_rng.below(std::size(interesting8))];
    return input;
}

Input
Mutator::havoc(Input input)
{
    const uint64_t edits = _rng.range(1, 8);
    for (uint64_t e = 0; e < edits; ++e) {
        switch (_rng.below(6)) {
          case 0:
            input = bitFlip(std::move(input));
            break;
          case 1:
            input = byteFlip(std::move(input));
            break;
          case 2:
            input = arith(std::move(input));
            break;
          case 3:
            input = interesting(std::move(input));
            break;
          case 4: {  // insert a random byte
            const size_t pos = _rng.below(input.size() + 1);
            input.insert(input.begin() + static_cast<int64_t>(pos),
                         static_cast<uint8_t>(_rng.below(256)));
            break;
          }
          case 5: {  // delete or duplicate a run
            if (input.size() > 1 && _rng.chance(0.5)) {
                const size_t pos = _rng.below(input.size());
                const size_t len = std::min<size_t>(
                    _rng.range(1, 8), input.size() - pos);
                input.erase(
                    input.begin() + static_cast<int64_t>(pos),
                    input.begin() + static_cast<int64_t>(pos + len));
            } else if (!input.empty()) {
                const size_t pos = _rng.below(input.size());
                const size_t len = std::min<size_t>(
                    _rng.range(1, 8), input.size() - pos);
                Input run(input.begin() + static_cast<int64_t>(pos),
                          input.begin() +
                              static_cast<int64_t>(pos + len));
                input.insert(input.begin() +
                                 static_cast<int64_t>(pos),
                             run.begin(), run.end());
            }
            break;
          }
        }
        if (input.size() > 4096)
            input.resize(4096);    // keep inputs bounded
    }
    if (input.empty())
        input.push_back(0);
    return input;
}

Input
Mutator::splice(const Input &a, const Input &b)
{
    Input out;
    const size_t head = a.empty() ? 0 : _rng.below(a.size() + 1);
    const size_t tail = b.empty() ? 0 : _rng.below(b.size() + 1);
    out.insert(out.end(), a.begin(),
               a.begin() + static_cast<int64_t>(head));
    out.insert(out.end(), b.begin() + static_cast<int64_t>(tail),
               b.end());
    return havoc(std::move(out));
}

Input
Mutator::mutate(const Input &base)
{
    switch (_rng.below(5)) {
      case 0: return bitFlip(base);
      case 1: return byteFlip(base);
      case 2: return arith(base);
      case 3: return interesting(base);
      default: return havoc(base);
    }
}

} // namespace flowguard::fuzz
