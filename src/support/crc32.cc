#include "support/crc32.hh"

#include <array>

namespace flowguard {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const void *data, size_t size, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeTable();
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ bytes[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const std::vector<uint8_t> &bytes, uint32_t seed)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace flowguard
