#include "support/fsio.hh"

#include <cstdio>
#include <fstream>

namespace flowguard {

bool
writeFileAtomic(const std::string &path, const void *data,
                size_t size)
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            return false;
        }
        out.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(size));
        out.flush();
        if (!out) {
            out.close();
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    return writeFileAtomic(path, bytes.data(), bytes.size());
}

} // namespace flowguard
