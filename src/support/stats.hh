/**
 * @file
 * Small statistics helpers used by the evaluation harness: scalar
 * accumulators, geometric means (the paper reports geomeans throughout),
 * and a fixed-width table printer for regenerating the paper's tables.
 */

#ifndef FLOWGUARD_SUPPORT_STATS_HH
#define FLOWGUARD_SUPPORT_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flowguard {

/** Accumulates samples; exposes count/sum/mean/min/max and geomean. */
class Accumulator
{
  public:
    void add(double sample);

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const;
    double min() const;
    double max() const;

    /**
     * Geometric mean of the samples. All samples must be positive;
     * computed in log space for stability.
     */
    double geomean() const;

  private:
    uint64_t _count = 0;
    double _sum = 0.0;
    double _logSum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Geometric mean of a vector of positive values. */
double geomean(const std::vector<double> &values);

/**
 * Sample-retaining accumulator for latency-style metrics (deferral
 * ages, backoff delays) where the tail matters more than the mean:
 * exposes arbitrary quantiles alongside the usual scalars.
 */
class Distribution
{
  public:
    void add(double sample);

    /**
     * Folds another distribution's samples into this one. Used to
     * aggregate per-run distributions (e.g. protection-gap widths
     * across a crash-point sweep) into one quantile-able pool.
     */
    void merge(const Distribution &other);

    uint64_t count() const { return _samples.size(); }
    bool empty() const { return _samples.empty(); }
    double mean() const;
    double max() const;

    /**
     * Quantile by linear interpolation between order statistics;
     * `q` in [0, 1]. Requires at least one sample.
     */
    double quantile(double q) const;

    const std::vector<double> &samples() const { return _samples; }

  private:
    void sortIfNeeded() const;

    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
};

/**
 * Fixed-width console table: collects rows of strings and prints them
 * padded to per-column maxima, in the style of the paper's tables.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Renders the table (header, rule, rows) to a string. */
    std::string render() const;

    /** Convenience: render and write to stdout. */
    void print() const;

    /** Formats a double with the given precision. */
    static std::string fmt(double value, int precision = 2);

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Minimal streaming JSON writer for the benchmark artifacts
 * (BENCH_*.json): nested objects/arrays, string escaping, and
 * locale-independent number formatting. Not a parser, not validating
 * beyond nesting sanity — just enough to emit machine-readable
 * benchmark results without an external dependency.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Names the next value inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &text);
    JsonWriter &value(const char *text);
    JsonWriter &value(double number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(int number);
    JsonWriter &value(bool flag);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The document; all containers must be closed. */
    std::string str() const;

    /** Renders to `path`; fatal on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    void beforeValue();
    void raw(const std::string &text);

    std::string _out;
    /** One char per open container: '{' or '['. */
    std::vector<char> _stack;
    /** Whether the next value at each level needs a leading comma. */
    std::vector<bool> _needComma;
    bool _haveKey = false;
};

} // namespace flowguard

#endif // FLOWGUARD_SUPPORT_STATS_HH
