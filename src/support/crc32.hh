/**
 * @file
 * CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the frame checksum for
 * crash-safe on-disk structures (journal records, snapshot trailers).
 * A torn or bit-flipped record must be *detected*, never trusted;
 * this is the cheapest check that catches both.
 */

#ifndef FLOWGUARD_SUPPORT_CRC32_HH
#define FLOWGUARD_SUPPORT_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flowguard {

/** CRC-32 of `size` bytes; `seed` chains incremental computations. */
uint32_t crc32(const void *data, size_t size, uint32_t seed = 0);

uint32_t crc32(const std::vector<uint8_t> &bytes, uint32_t seed = 0);

} // namespace flowguard

#endif // FLOWGUARD_SUPPORT_CRC32_HH
