#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace flowguard {

void
Accumulator::add(double sample)
{
    if (_count == 0) {
        _min = _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _sum += sample;
    if (sample > 0.0)
        _logSum += std::log(sample);
}

double
Accumulator::mean() const
{
    fg_assert(_count > 0, "mean of empty accumulator");
    return _sum / static_cast<double>(_count);
}

double
Accumulator::min() const
{
    fg_assert(_count > 0, "min of empty accumulator");
    return _min;
}

double
Accumulator::max() const
{
    fg_assert(_count > 0, "max of empty accumulator");
    return _max;
}

double
Accumulator::geomean() const
{
    fg_assert(_count > 0, "geomean of empty accumulator");
    return std::exp(_logSum / static_cast<double>(_count));
}

double
geomean(const std::vector<double> &values)
{
    Accumulator acc;
    for (double v : values)
        acc.add(v);
    return acc.geomean();
}

void
Distribution::add(double sample)
{
    _samples.push_back(sample);
    _sorted = false;
}

void
Distribution::sortIfNeeded() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
Distribution::mean() const
{
    fg_assert(!_samples.empty(), "mean of empty distribution");
    double sum = 0.0;
    for (double s : _samples)
        sum += s;
    return sum / static_cast<double>(_samples.size());
}

double
Distribution::max() const
{
    fg_assert(!_samples.empty(), "max of empty distribution");
    sortIfNeeded();
    return _samples.back();
}

double
Distribution::quantile(double q) const
{
    fg_assert(!_samples.empty(), "quantile of empty distribution");
    fg_assert(q >= 0.0 && q <= 1.0, "quantile out of range");
    sortIfNeeded();
    if (_samples.size() == 1)
        return _samples.front();
    const double rank = q * static_cast<double>(_samples.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, _samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return _samples[lo] + frac * (_samples[hi] - _samples[lo]);
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : _header(std::move(header))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fg_assert(cells.size() == _header.size(),
              "row width mismatches header");
    _rows.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(_header.size());
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(_header);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    oss << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : _rows)
        emit_row(row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace flowguard
