#include "support/stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "support/logging.hh"

namespace flowguard {

void
Accumulator::add(double sample)
{
    if (_count == 0) {
        _min = _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _sum += sample;
    if (sample > 0.0)
        _logSum += std::log(sample);
}

double
Accumulator::mean() const
{
    fg_assert(_count > 0, "mean of empty accumulator");
    return _sum / static_cast<double>(_count);
}

double
Accumulator::min() const
{
    fg_assert(_count > 0, "min of empty accumulator");
    return _min;
}

double
Accumulator::max() const
{
    fg_assert(_count > 0, "max of empty accumulator");
    return _max;
}

double
Accumulator::geomean() const
{
    fg_assert(_count > 0, "geomean of empty accumulator");
    return std::exp(_logSum / static_cast<double>(_count));
}

double
geomean(const std::vector<double> &values)
{
    Accumulator acc;
    for (double v : values)
        acc.add(v);
    return acc.geomean();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : _header(std::move(header))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fg_assert(cells.size() == _header.size(),
              "row width mismatches header");
    _rows.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(_header.size());
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(_header);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    oss << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : _rows)
        emit_row(row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

} // namespace flowguard
