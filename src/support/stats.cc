#include "support/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <locale>
#include <sstream>

#include "support/logging.hh"

namespace flowguard {

void
Accumulator::add(double sample)
{
    if (_count == 0) {
        _min = _max = sample;
    } else {
        _min = std::min(_min, sample);
        _max = std::max(_max, sample);
    }
    ++_count;
    _sum += sample;
    if (sample > 0.0)
        _logSum += std::log(sample);
}

double
Accumulator::mean() const
{
    fg_assert(_count > 0, "mean of empty accumulator");
    return _sum / static_cast<double>(_count);
}

double
Accumulator::min() const
{
    fg_assert(_count > 0, "min of empty accumulator");
    return _min;
}

double
Accumulator::max() const
{
    fg_assert(_count > 0, "max of empty accumulator");
    return _max;
}

double
Accumulator::geomean() const
{
    fg_assert(_count > 0, "geomean of empty accumulator");
    return std::exp(_logSum / static_cast<double>(_count));
}

double
geomean(const std::vector<double> &values)
{
    Accumulator acc;
    for (double v : values)
        acc.add(v);
    return acc.geomean();
}

void
Distribution::add(double sample)
{
    _samples.push_back(sample);
    _sorted = false;
}

void
Distribution::merge(const Distribution &other)
{
    if (other._samples.empty())
        return;
    _samples.insert(_samples.end(), other._samples.begin(),
                    other._samples.end());
    _sorted = false;
}

void
Distribution::sortIfNeeded() const
{
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
Distribution::mean() const
{
    fg_assert(!_samples.empty(), "mean of empty distribution");
    double sum = 0.0;
    for (double s : _samples)
        sum += s;
    return sum / static_cast<double>(_samples.size());
}

double
Distribution::max() const
{
    fg_assert(!_samples.empty(), "max of empty distribution");
    sortIfNeeded();
    return _samples.back();
}

double
Distribution::quantile(double q) const
{
    fg_assert(!_samples.empty(), "quantile of empty distribution");
    fg_assert(q >= 0.0 && q <= 1.0, "quantile out of range");
    sortIfNeeded();
    if (_samples.size() == 1)
        return _samples.front();
    const double rank = q * static_cast<double>(_samples.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, _samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return _samples[lo] + frac * (_samples[hi] - _samples[lo]);
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : _header(std::move(header))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    fg_assert(cells.size() == _header.size(),
              "row width mismatches header");
    _rows.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(_header.size());
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            oss << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(_header);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    oss << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : _rows)
        emit_row(row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

namespace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
JsonWriter::raw(const std::string &text)
{
    _out += text;
}

void
JsonWriter::beforeValue()
{
    if (_stack.empty()) {
        fg_assert(_out.empty(), "only one top-level JSON value");
        return;
    }
    if (_stack.back() == '{') {
        fg_assert(_haveKey, "object values need a key()");
        _haveKey = false;
        return;
    }
    if (_needComma.back())
        raw(",");
    _needComma.back() = true;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    fg_assert(!_stack.empty() && _stack.back() == '{',
              "key() outside an object");
    fg_assert(!_haveKey, "key() already pending");
    if (_needComma.back())
        raw(",");
    _needComma.back() = true;
    raw("\"" + jsonEscape(name) + "\":");
    _haveKey = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    raw("{");
    _stack.push_back('{');
    _needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    fg_assert(!_stack.empty() && _stack.back() == '{',
              "endObject() with no open object");
    fg_assert(!_haveKey, "dangling key()");
    _stack.pop_back();
    _needComma.pop_back();
    raw("}");
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    raw("[");
    _stack.push_back('[');
    _needComma.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    fg_assert(!_stack.empty() && _stack.back() == '[',
              "endArray() with no open array");
    _stack.pop_back();
    _needComma.pop_back();
    raw("]");
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &text)
{
    beforeValue();
    raw("\"" + jsonEscape(text) + "\"");
    return *this;
}

JsonWriter &
JsonWriter::value(const char *text)
{
    return value(std::string(text));
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        raw("null");    // JSON has no Inf/NaN
        return *this;
    }
    std::ostringstream oss;
    oss.imbue(std::locale::classic());
    oss << std::setprecision(12) << number;
    raw(oss.str());
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    beforeValue();
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    beforeValue();
    raw(std::to_string(number));
    return *this;
}

JsonWriter &
JsonWriter::value(int number)
{
    return value(static_cast<int64_t>(number));
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    raw(flag ? "true" : "false");
    return *this;
}

std::string
JsonWriter::str() const
{
    fg_assert(_stack.empty(), "unclosed JSON container");
    return _out;
}

void
JsonWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fg_assert(out.good(), "cannot open JSON output file");
    out << str() << "\n";
    fg_assert(out.good(), "JSON write failed");
}

} // namespace flowguard
