/**
 * @file
 * Crash-safe file writing.
 *
 * A profile or snapshot save that dies mid-write must never leave a
 * half-written artifact under the final name: a later load would see
 * a torn file where yesterday there was a good one. The atomic idiom
 * — write a sibling temp file, flush, then rename over the target —
 * guarantees the final path always holds either the old complete
 * bytes or the new complete bytes, never a mix.
 */

#ifndef FLOWGUARD_SUPPORT_FSIO_HH
#define FLOWGUARD_SUPPORT_FSIO_HH

#include <cstddef>
#include <string>

namespace flowguard {

/**
 * Writes `size` bytes to `path` via temp-file + rename. Returns false
 * (and removes the temp file) on any I/O failure; the target is
 * untouched in that case.
 */
bool writeFileAtomic(const std::string &path, const void *data,
                     size_t size);

bool writeFileAtomic(const std::string &path,
                     const std::string &bytes);

} // namespace flowguard

#endif // FLOWGUARD_SUPPORT_FSIO_HH
