#include "support/random.hh"

#include "support/logging.hh"

namespace flowguard {

namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : _state)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    fg_assert(bound > 0, "Rng::below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    fg_assert(lo <= hi, "Rng::range requires lo <= hi");
    return lo + below(hi - lo + 1);
}

double
Rng::unit()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return unit() < p;
}

} // namespace flowguard
