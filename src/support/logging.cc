#include "support/logging.hh"

#include <cstdio>
#include <unordered_map>

namespace flowguard {

namespace {

bool errors_throw = true;
bool log_verbose = false;

LogHook log_hook;
uint64_t log_repeat_every = 100;
uint64_t log_suppressed = 0;
/** message -> occurrences; bounded by periodic reset (see emitLog). */
std::unordered_map<std::string, uint64_t> dedup_counts;
constexpr size_t dedup_table_cap = 4096;

} // namespace

void
setErrorsThrow(bool throws)
{
    errors_throw = throws;
}

bool
errorsThrow()
{
    return errors_throw;
}

void
setLogVerbose(bool verbose)
{
    log_verbose = verbose;
}

bool
logVerbose()
{
    return log_verbose;
}

void
setLogHook(LogHook hook)
{
    log_hook = std::move(hook);
}

void
setLogRepeatEvery(uint64_t n)
{
    log_repeat_every = n ? n : 1;
}

uint64_t
logRepeatEvery()
{
    return log_repeat_every;
}

uint64_t
logSuppressed()
{
    return log_suppressed;
}

void
resetLogDedup()
{
    dedup_counts.clear();
    log_suppressed = 0;
}

namespace detail {

void
raiseError(SimError::Kind kind, const std::string &msg,
           const char *file, int line)
{
    std::ostringstream oss;
    oss << (kind == SimError::Kind::Panic ? "panic: " : "fatal: ")
        << msg << " (" << file << ":" << line << ")";
    if (errors_throw)
        throw SimError(kind, oss.str());
    std::fprintf(stderr, "%s\n", oss.str().c_str());
    if (kind == SimError::Kind::Panic)
        std::abort();
    std::exit(1);
}

bool
logHookActive()
{
    return static_cast<bool>(log_hook);
}

void
emitLog(const char *prefix, const std::string &msg)
{
    if (log_hook)
        log_hook(prefix, msg);
    if (!log_verbose)
        return;

    // Duplicate suppression: first occurrence plus every Nth after
    // that, so a fault-injection sweep repeating one warning ten
    // thousand times prints it ~100 times, each stamped with the
    // running count.
    if (dedup_counts.size() >= dedup_table_cap)
        dedup_counts.clear();
    uint64_t &count =
        ++dedup_counts[std::string(prefix) + '\x1f' + msg];
    const bool print = log_repeat_every <= 1 || count == 1 ||
        (count - 1) % log_repeat_every == 0;
    if (!print) {
        ++log_suppressed;
        return;
    }
    if (count > 1) {
        std::fprintf(stderr, "%s: %s [seen %llu times]\n", prefix,
                     msg.c_str(),
                     static_cast<unsigned long long>(count));
    } else {
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    }
}

} // namespace detail

} // namespace flowguard
