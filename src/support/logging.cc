#include "support/logging.hh"

#include <cstdio>

namespace flowguard {

namespace {

bool errors_throw = true;
bool log_verbose = false;

} // namespace

void
setErrorsThrow(bool throws)
{
    errors_throw = throws;
}

bool
errorsThrow()
{
    return errors_throw;
}

void
setLogVerbose(bool verbose)
{
    log_verbose = verbose;
}

bool
logVerbose()
{
    return log_verbose;
}

namespace detail {

void
raiseError(SimError::Kind kind, const std::string &msg,
           const char *file, int line)
{
    std::ostringstream oss;
    oss << (kind == SimError::Kind::Panic ? "panic: " : "fatal: ")
        << msg << " (" << file << ":" << line << ")";
    if (errors_throw)
        throw SimError(kind, oss.str());
    std::fprintf(stderr, "%s\n", oss.str().c_str());
    if (kind == SimError::Kind::Panic)
        std::abort();
    std::exit(1);
}

void
emitLog(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace flowguard
