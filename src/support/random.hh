/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator flows through Rng so runs are exactly
 * reproducible from a seed. The engine is xoshiro256**, seeded through
 * SplitMix64 as its authors recommend.
 */

#ifndef FLOWGUARD_SUPPORT_RANDOM_HH
#define FLOWGUARD_SUPPORT_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace flowguard {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) — bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double unit();

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Picks a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[below(i)]);
    }

  private:
    std::array<uint64_t, 4> _state;
};

/** SplitMix64 step, exposed for hashing-like uses. */
uint64_t splitmix64(uint64_t &state);

} // namespace flowguard

#endif // FLOWGUARD_SUPPORT_RANDOM_HH
