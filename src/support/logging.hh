/**
 * @file
 * Logging and error-termination helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated: a FlowGuard bug.
 *            Aborts so a core dump / debugger can capture the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits cleanly.
 * warn()   — something works, but not as well as it should.
 * inform() — normal operational status for the user.
 */

#ifndef FLOWGUARD_SUPPORT_LOGGING_HH
#define FLOWGUARD_SUPPORT_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace flowguard {

/** Exception thrown by panic()/fatal() so tests can intercept them. */
class SimError : public std::runtime_error
{
  public:
    enum class Kind { Panic, Fatal };

    SimError(Kind kind, const std::string &message)
        : std::runtime_error(message), _kind(kind)
    {}

    Kind kind() const { return _kind; }

  private:
    Kind _kind;
};

namespace detail {

/** Formats "prefix: message (file:line)" and raises/prints. */
[[noreturn]] void raiseError(SimError::Kind kind, const std::string &msg,
                             const char *file, int line);

void emitLog(const char *prefix, const std::string &msg);

/** True when a telemetry log hook is installed (see setLogHook). */
bool logHookActive();

/** Builds a message from stream-formattable pieces. */
template <typename... Args>
std::string
formatPieces(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Global switch: when true (default), panic/fatal throw SimError
 *  instead of terminating the process. Tests rely on this. */
void setErrorsThrow(bool throws);
bool errorsThrow();

/** Verbosity control for warn()/inform(). */
void setLogVerbose(bool verbose);
bool logVerbose();

/**
 * Optional observer for warn()/inform() traffic — the telemetry
 * layer's tap. When set, every message reaches the hook (regardless
 * of verbosity and before any rate limiting); stderr emission is
 * unchanged apart from duplicate suppression. Pass an empty function
 * to detach.
 */
using LogHook =
    std::function<void(const char *prefix, const std::string &msg)>;
void setLogHook(LogHook hook);

/**
 * Duplicate-message rate limit for the stderr path: a message that
 * repeats verbatim is printed on its first occurrence and then every
 * `n`th after that (so fault-injection sweeps stop flooding stderr).
 * `n` == 1 disables suppression. Default: 100.
 */
void setLogRepeatEvery(uint64_t n);
uint64_t logRepeatEvery();

/** Messages swallowed by duplicate suppression since the last reset. */
uint64_t logSuppressed();

/** Clears the duplicate-tracking table and the suppressed count. */
void resetLogDedup();

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::raiseError(SimError::Kind::Panic,
                       detail::formatPieces(std::forward<Args>(args)...),
                       file, line);
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    detail::raiseError(SimError::Kind::Fatal,
                       detail::formatPieces(std::forward<Args>(args)...),
                       file, line);
}

template <typename... Args>
void
warn(Args &&...args)
{
    if (logVerbose() || detail::logHookActive()) {
        detail::emitLog("warn",
                        detail::formatPieces(std::forward<Args>(args)...));
    }
}

template <typename... Args>
void
inform(Args &&...args)
{
    if (logVerbose() || detail::logHookActive()) {
        detail::emitLog("info",
                        detail::formatPieces(std::forward<Args>(args)...));
    }
}

#define fg_panic(...) \
    ::flowguard::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define fg_fatal(...) \
    ::flowguard::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-invariant assertion; always on (not tied to NDEBUG). */
#define fg_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::flowguard::panicAt(__FILE__, __LINE__,                      \
                                 "assertion failed: " #cond " "           \
                                 __VA_ARGS__);                            \
        }                                                                 \
    } while (0)

} // namespace flowguard

#endif // FLOWGUARD_SUPPORT_LOGGING_HH
