#include "decode/fast_decoder.hh"

#include <algorithm>

#include "telemetry/telemetry.hh"

namespace flowguard::decode {

using trace::Packet;
using trace::PacketKind;
using trace::PacketParser;

namespace {

void
charge(cpu::CycleAccount *account, uint64_t bytes)
{
    if (account)
        account->decode += static_cast<double>(bytes) *
                           cpu::cost::sw_packet_decode_per_byte;
}

/** FastDecode span + loss instants; call after charge() so the span
 *  end carries the decode's own modeled cycles. */
void
report(telemetry::Telemetry *tel, uint64_t cr3, uint64_t begin,
       const FastDecodeResult &result)
{
    if (!tel)
        return;
    tel->completeSpan(telemetry::SpanKind::FastDecode, cr3, 0, begin,
                      tel->now(), 0, result.steps.size(),
                      result.bytesScanned);
    if (result.overflows) {
        tel->instant(telemetry::EventKind::Overflow, cr3, 0,
                     result.overflows);
    }
    if (result.resyncs || result.bytesSkipped) {
        tel->instant(telemetry::EventKind::Resync, cr3, 0,
                     result.resyncs, result.bytesSkipped);
    }
}

FastDecodeResult
decodeFrom(const uint8_t *data, size_t size, size_t start,
           size_t end = SIZE_MAX)
{
    FastDecodeResult result;
    const size_t limit = std::min(size, end);
    PacketParser parser(data, limit);
    parser.seek(start);

    std::vector<uint8_t> pending_tnt;
    bool loss_pending = false;
    Packet pkt;
    while (true) {
        if (!parser.next(pkt)) {
            if (!parser.bad())
                break;      // clean end of buffer
            // Malformed bytes: resynchronize at the next validated
            // PSB. Anything in between is unrecoverable — account it
            // and break TIP adjacency across the gap.
            result.malformed = true;
            const size_t bad_at = static_cast<size_t>(parser.offset());
            const size_t psb =
                trace::findNextPsb(data, limit, bad_at + 1);
            if (psb == SIZE_MAX) {
                result.bytesSkipped += limit - bad_at;
                parser.seek(limit);
                break;
            }
            result.bytesSkipped += psb - bad_at;
            ++result.resyncs;
            parser.seek(psb);
            pending_tnt.clear();
            loss_pending = true;
            continue;
        }
        ++result.packetCount;
        switch (pkt.kind) {
          case PacketKind::Pad:
          case PacketKind::PsbEnd:
            break;
          case PacketKind::Psb:
            ++result.psbCount;
            break;
          case PacketKind::Ovf:
            // The hardware dropped packets here; TNT bits buffered
            // before the gap no longer pair with what follows.
            ++result.overflows;
            pending_tnt.clear();
            loss_pending = true;
            break;
          case PacketKind::Tnt:
            for (int i = 0; i < pkt.tntCount; ++i)
                pending_tnt.push_back((pkt.tntBits >> i) & 1);
            break;
          case PacketKind::Tip:
          case PacketKind::TipPge:
          case PacketKind::TipPgd:
          case PacketKind::Fup: {
            FlowStep step;
            step.kind = pkt.kind == PacketKind::Tip ? StepKind::Tip
                : pkt.kind == PacketKind::TipPge ? StepKind::Pge
                : pkt.kind == PacketKind::TipPgd ? StepKind::Pgd
                : StepKind::Fup;
            step.ipSuppressed = pkt.ipSuppressed;
            step.ip = pkt.ip;
            step.tntBefore = std::move(pending_tnt);
            pending_tnt.clear();
            step.lossBefore = loss_pending;
            loss_pending = false;
            result.steps.push_back(std::move(step));
            break;
          }
        }
    }
    result.trailingTnt = std::move(pending_tnt);
    result.bytesScanned = parser.offset() - start;
    result.startOffset = start;
    return result;
}

} // namespace

FastDecodeResult
decodePacketLayer(const uint8_t *data, size_t size,
                  cpu::CycleAccount *account,
                  telemetry::Telemetry *telemetry, uint64_t cr3)
{
    const uint64_t begin = telemetry ? telemetry->now() : 0;
    FastDecodeResult result = decodeFrom(data, size, 0);
    charge(account, result.bytesScanned);
    report(telemetry, cr3, begin, result);
    return result;
}

FastDecodeResult
decodePacketLayer(const std::vector<uint8_t> &data,
                  cpu::CycleAccount *account,
                  telemetry::Telemetry *telemetry, uint64_t cr3)
{
    return decodePacketLayer(data.data(), data.size(), account,
                             telemetry, cr3);
}

FastDecodeResult
decodeRecentTips(const uint8_t *data, size_t size, size_t min_tips,
                 cpu::CycleAccount *account,
                 telemetry::Telemetry *telemetry, uint64_t cr3)
{
    const uint64_t begin = telemetry ? telemetry->now() : 0;
    // PSB sync points let us begin decoding anywhere; walk backwards
    // segment by segment until the suffix holds enough TIP packets,
    // then emit the suffix in one chronological pass. Each byte is
    // touched at most twice (count pass + emit pass).
    std::vector<uint64_t> syncs = trace::findPsbOffsets(data, size);
    if (syncs.empty())
        return decodePacketLayer(data, size, account, telemetry, cr3);

    uint64_t scanned = 0;
    size_t cutoff = syncs.size() - 1;
    size_t tips = 0;
    for (size_t i = syncs.size(); i-- > 0;) {
        const size_t seg_end = i + 1 < syncs.size()
            ? static_cast<size_t>(syncs[i + 1]) : size;
        FastDecodeResult segment = decodeFrom(
            data, size, static_cast<size_t>(syncs[i]), seg_end);
        scanned += segment.bytesScanned;
        for (const auto &step : segment.steps)
            tips += step.kind == StepKind::Tip ? 1 : 0;
        cutoff = i;
        if (tips >= min_tips)
            break;
    }

    FastDecodeResult result =
        decodeFrom(data, size, static_cast<size_t>(syncs[cutoff]));
    scanned += result.bytesScanned;
    result.bytesScanned = scanned;

    // The encoder's overflow resync emits OVF immediately followed by
    // the PSB we just anchored at. The gap the OVF marks lies inside
    // the history this window is supposed to cover ("everything since
    // the last check"), so it must stay visible to the loss policy
    // even though decoding starts at the PSB.
    const size_t anchor = static_cast<size_t>(syncs[cutoff]);
    if (anchor >= 2 && data[anchor - 2] == 0x02 &&
        data[anchor - 1] == 0xF3) {
        ++result.overflows;
        if (!result.steps.empty())
            result.steps.front().lossBefore = true;
    }
    charge(account, scanned);
    report(telemetry, cr3, begin, result);
    return result;
}

FastDecodeResult
decodeRecentTips(const std::vector<uint8_t> &data, size_t min_tips,
                 cpu::CycleAccount *account,
                 telemetry::Telemetry *telemetry, uint64_t cr3)
{
    return decodeRecentTips(data.data(), data.size(), min_tips, account,
                            telemetry, cr3);
}

size_t
resyncOffset(const uint8_t *data, size_t size, size_t offset)
{
    if (offset >= size)
        return SIZE_MAX;
    return trace::findNextPsb(data, size, offset);
}

size_t
resyncOffset(const std::vector<uint8_t> &data, size_t offset)
{
    return resyncOffset(data.data(), data.size(), offset);
}

std::vector<TipTransition>
extractTipTransitions(const FastDecodeResult &flow)
{
    std::vector<TipTransition> out;
    uint64_t prev = 0;
    std::vector<uint8_t> tnt;
    for (const auto &step : flow.steps) {
        if (step.lossBefore) {
            // Trace gap: the previous TIP is not this step's true
            // predecessor. Restart the window as if at its head.
            prev = 0;
            tnt.clear();
        }
        tnt.insert(tnt.end(), step.tntBefore.begin(),
                   step.tntBefore.end());
        if (step.kind != StepKind::Tip || step.ipSuppressed)
            continue;   // context markers are transparent
        TipTransition transition;
        transition.from = prev;
        transition.to = step.ip;
        transition.tnt = std::move(tnt);
        tnt.clear();
        out.push_back(std::move(transition));
        prev = step.ip;
    }
    return out;
}

} // namespace flowguard::decode
