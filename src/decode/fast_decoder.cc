#include "decode/fast_decoder.hh"

#include <algorithm>

namespace flowguard::decode {

using trace::Packet;
using trace::PacketKind;
using trace::PacketParser;

namespace {

void
charge(cpu::CycleAccount *account, uint64_t bytes)
{
    if (account)
        account->decode += static_cast<double>(bytes) *
                           cpu::cost::sw_packet_decode_per_byte;
}

FastDecodeResult
decodeFrom(const uint8_t *data, size_t size, size_t start,
           size_t end = SIZE_MAX)
{
    FastDecodeResult result;
    PacketParser parser(data, std::min(size, end));
    parser.seek(start);

    std::vector<uint8_t> pending_tnt;
    Packet pkt;
    while (parser.next(pkt)) {
        ++result.packetCount;
        switch (pkt.kind) {
          case PacketKind::Pad:
          case PacketKind::PsbEnd:
            break;
          case PacketKind::Psb:
            ++result.psbCount;
            break;
          case PacketKind::Tnt:
            for (int i = 0; i < pkt.tntCount; ++i)
                pending_tnt.push_back((pkt.tntBits >> i) & 1);
            break;
          case PacketKind::Tip:
          case PacketKind::TipPge:
          case PacketKind::TipPgd:
          case PacketKind::Fup: {
            FlowStep step;
            step.kind = pkt.kind == PacketKind::Tip ? StepKind::Tip
                : pkt.kind == PacketKind::TipPge ? StepKind::Pge
                : pkt.kind == PacketKind::TipPgd ? StepKind::Pgd
                : StepKind::Fup;
            step.ipSuppressed = pkt.ipSuppressed;
            step.ip = pkt.ip;
            step.tntBefore = std::move(pending_tnt);
            pending_tnt.clear();
            result.steps.push_back(std::move(step));
            break;
          }
        }
    }
    result.trailingTnt = std::move(pending_tnt);
    result.malformed = parser.bad();
    result.bytesScanned = parser.offset() - start;
    result.startOffset = start;
    return result;
}

} // namespace

FastDecodeResult
decodePacketLayer(const uint8_t *data, size_t size,
                  cpu::CycleAccount *account)
{
    FastDecodeResult result = decodeFrom(data, size, 0);
    charge(account, result.bytesScanned);
    return result;
}

FastDecodeResult
decodePacketLayer(const std::vector<uint8_t> &data,
                  cpu::CycleAccount *account)
{
    return decodePacketLayer(data.data(), data.size(), account);
}

FastDecodeResult
decodeRecentTips(const uint8_t *data, size_t size, size_t min_tips,
                 cpu::CycleAccount *account)
{
    // PSB sync points let us begin decoding anywhere; walk backwards
    // segment by segment until the suffix holds enough TIP packets,
    // then emit the suffix in one chronological pass. Each byte is
    // touched at most twice (count pass + emit pass).
    std::vector<uint64_t> syncs = trace::findPsbOffsets(data, size);
    if (syncs.empty())
        return decodePacketLayer(data, size, account);

    uint64_t scanned = 0;
    size_t cutoff = syncs.size() - 1;
    size_t tips = 0;
    for (size_t i = syncs.size(); i-- > 0;) {
        const size_t seg_end = i + 1 < syncs.size()
            ? static_cast<size_t>(syncs[i + 1]) : size;
        FastDecodeResult segment = decodeFrom(
            data, size, static_cast<size_t>(syncs[i]), seg_end);
        scanned += segment.bytesScanned;
        for (const auto &step : segment.steps)
            tips += step.kind == StepKind::Tip ? 1 : 0;
        cutoff = i;
        if (tips >= min_tips)
            break;
    }

    FastDecodeResult result =
        decodeFrom(data, size, static_cast<size_t>(syncs[cutoff]));
    scanned += result.bytesScanned;
    result.bytesScanned = scanned;
    charge(account, scanned);
    return result;
}

FastDecodeResult
decodeRecentTips(const std::vector<uint8_t> &data, size_t min_tips,
                 cpu::CycleAccount *account)
{
    return decodeRecentTips(data.data(), data.size(), min_tips, account);
}

std::vector<TipTransition>
extractTipTransitions(const FastDecodeResult &flow)
{
    std::vector<TipTransition> out;
    uint64_t prev = 0;
    std::vector<uint8_t> tnt;
    for (const auto &step : flow.steps) {
        tnt.insert(tnt.end(), step.tntBefore.begin(),
                   step.tntBefore.end());
        if (step.kind != StepKind::Tip || step.ipSuppressed)
            continue;   // context markers are transparent
        TipTransition transition;
        transition.from = prev;
        transition.to = step.ip;
        transition.tnt = std::move(tnt);
        tnt.clear();
        out.push_back(std::move(transition));
        prev = step.ip;
    }
    return out;
}

} // namespace flowguard::decode
