/**
 * @file
 * Full (instruction-flow-layer) decoder — the engine behind the slow
 * path and behind the paper's §2 "decoding is ~230x" measurement.
 *
 * Mirrors the Intel reference decoder's instruction flow layer: it
 * walks the program binaries instruction by instruction, consuming a
 * TNT bit at every conditional branch and a TIP payload at every
 * indirect branch, and thereby reconstructs the complete control flow
 * including all the direct transfers IPT never logged.
 *
 * Trace loss (OVF packets, undecodable spans) does not fail the
 * decode: the walk re-anchors at the next packet that names an
 * address and reconstructs every surviving window, recording where
 * the gaps fall so checkers can reset cross-gap state (e.g. the
 * shadow stack) instead of reporting false violations.
 */

#ifndef FLOWGUARD_DECODE_FULL_DECODER_HH
#define FLOWGUARD_DECODE_FULL_DECODER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/cost_model.hh"
#include "cpu/events.hh"
#include "isa/program.hh"

namespace flowguard::telemetry {
class Telemetry;
} // namespace flowguard::telemetry

namespace flowguard::decode {

/** One reconstructed control transfer. */
struct DecodedBranch
{
    cpu::BranchKind kind = cpu::BranchKind::DirectJump;
    uint64_t source = 0;
    uint64_t target = 0;
};

/** Outcome of a full decode. */
struct FullDecodeResult
{
    enum class Status : uint8_t {
        Ok,             ///< all packets consumed coherently
        NoSync,         ///< no usable sync point in the buffer
        Desync,         ///< packets inconsistent with the binaries
        BadFlow,        ///< walked off mapped code
    };

    Status status = Status::Ok;
    std::vector<DecodedBranch> branches;
    /** Instructions walked — the unit the 230x cost scales with. */
    uint64_t instructionsWalked = 0;
    /** Where the reconstruction started (first known IP). */
    uint64_t startIp = 0;
    std::string error;

    // Loss accounting (§7.1.2 degraded modes).
    /** Hardware OVF packets seen in the stream. */
    uint64_t overflows = 0;
    /** Skip-to-next-PSB recoveries from malformed bytes. */
    uint64_t resyncs = 0;
    /** Undecodable bytes skipped during those recoveries. */
    uint64_t bytesSkipped = 0;
    /**
     * Indices into `branches` where a trace gap immediately precedes
     * the entry: each such branch opens a fresh window whose link to
     * everything earlier is unknowable (an index equal to
     * branches.size() means the trace ended inside a gap). Checkers
     * must reset cross-branch state — shadow stacks above all — at
     * these points.
     */
    std::vector<uint64_t> lossBranchIndices;

    bool ok() const { return status == Status::Ok; }

    /** True when any part of the stream was lost or undecodable. */
    bool lossDetected() const { return overflows > 0 || resyncs > 0; }
};

/**
 * Reconstructs instruction-level flow from raw IPT bytes.
 *
 * The walk starts at the first addressable sync point: the target of
 * the first PGE or TIP packet following a PSB (conditional outcomes
 * before that point are unusable and skipped, as in any mid-stream
 * attach). Charges cost::sw_full_decode_per_inst per instruction into
 * account->decode.
 */
FullDecodeResult decodeInstructionFlow(
    const isa::Program &program, const uint8_t *data, size_t size,
    cpu::CycleAccount *account = nullptr,
    telemetry::Telemetry *telemetry = nullptr, uint64_t cr3 = 0);

FullDecodeResult decodeInstructionFlow(
    const isa::Program &program, const std::vector<uint8_t> &data,
    cpu::CycleAccount *account = nullptr,
    telemetry::Telemetry *telemetry = nullptr, uint64_t cr3 = 0);

} // namespace flowguard::decode

#endif // FLOWGUARD_DECODE_FULL_DECODER_HH
