/**
 * @file
 * Fast (packet-layer) decoder — the fast-path front end of §5.3.
 *
 * Parses raw IPT bytes and extracts only the control-flow packets
 * (TIP/TNT plus the PGE/PGD/FUP context markers), without ever
 * consulting the binaries. PSB packets serve as sync points, so
 * decoding can start at any PSB and independent segments can be
 * processed in parallel.
 *
 * The decoder never trusts its input: malformed bytes and hardware
 * OVF markers both trigger a resynchronization to the next validated
 * PSB, with the skipped span accounted in the result's loss counters
 * and the TIP adjacency broken so no edge is fabricated across the
 * gap. It always terminates, whatever the buffer holds.
 */

#ifndef FLOWGUARD_DECODE_FAST_DECODER_HH
#define FLOWGUARD_DECODE_FAST_DECODER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpu/cost_model.hh"
#include "trace/ipt_packets.hh"

namespace flowguard::telemetry {
class Telemetry;
} // namespace flowguard::telemetry

namespace flowguard::decode {

/** Classes of flow-relevant packets surfaced to checkers. */
enum class StepKind : uint8_t { Tip, Pge, Pgd, Fup };

/**
 * One flow step: a TIP-class packet plus the TNT outcomes observed
 * since the previous step (the paper's per-edge TNT association).
 */
struct FlowStep
{
    StepKind kind = StepKind::Tip;
    bool ipSuppressed = false;
    uint64_t ip = 0;
    /** Conditional outcomes since the previous step, oldest first. */
    std::vector<uint8_t> tntBefore;
    /** True when trace was lost (OVF or resync) since the previous
     *  step: this step does not form an edge with its predecessor. */
    bool lossBefore = false;
};

/** Result of a packet-layer decode. */
struct FastDecodeResult
{
    std::vector<FlowStep> steps;        ///< chronological
    std::vector<uint8_t> trailingTnt;   ///< TNT after the last step
    uint64_t bytesScanned = 0;
    uint64_t packetCount = 0;
    bool malformed = false;
    /** Number of PSB sync points encountered. */
    uint64_t psbCount = 0;
    /** Byte offset of the sync point decoding started from. */
    uint64_t startOffset = 0;

    // Loss accounting (§7.1.2 degraded modes).
    /** Hardware OVF packets seen (packets dropped at the source). */
    uint64_t overflows = 0;
    /** Skip-to-next-PSB recoveries from malformed bytes. */
    uint64_t resyncs = 0;
    /** Undecodable bytes skipped during those recoveries. */
    uint64_t bytesSkipped = 0;

    /** True when any part of the window was lost or undecodable. */
    bool
    lossDetected() const
    {
        return overflows > 0 || resyncs > 0 || malformed;
    }
};

/**
 * Decodes the entire buffer at the packet layer.
 * Charges cost::sw_packet_decode_per_byte into account->decode.
 *
 * `telemetry`, when given, gets a FastDecode span covering the decode
 * plus Overflow/Resync instants for any loss the window carried —
 * attributed to process `cr3`.
 */
FastDecodeResult decodePacketLayer(const uint8_t *data, size_t size,
                                   cpu::CycleAccount *account = nullptr,
                                   telemetry::Telemetry *telemetry = nullptr,
                                   uint64_t cr3 = 0);

FastDecodeResult decodePacketLayer(const std::vector<uint8_t> &data,
                                   cpu::CycleAccount *account = nullptr,
                                   telemetry::Telemetry *telemetry = nullptr,
                                   uint64_t cr3 = 0);

/**
 * Decodes only enough of the tail of the buffer to recover at least
 * `min_tips` TIP packets (not counting PGE/PGD/FUP), starting from the
 * latest possible PSB sync point. This is what the runtime fast path
 * uses: it never pays for the whole ToPA buffer.
 *
 * The returned steps are chronological and cover the suffix of the
 * trace from the chosen sync point. If the buffer holds fewer TIPs,
 * everything available is returned.
 */
FastDecodeResult decodeRecentTips(const uint8_t *data, size_t size,
                                  size_t min_tips,
                                  cpu::CycleAccount *account = nullptr,
                                  telemetry::Telemetry *telemetry = nullptr,
                                  uint64_t cr3 = 0);

FastDecodeResult decodeRecentTips(const std::vector<uint8_t> &data,
                                  size_t min_tips,
                                  cpu::CycleAccount *account = nullptr,
                                  telemetry::Telemetry *telemetry = nullptr,
                                  uint64_t cr3 = 0);

/**
 * Decoder resynchronization point after a protection gap: the byte
 * offset of the first validated PSB at or after `offset`, or
 * SIZE_MAX when the remainder of the buffer holds none. A checker
 * that went dark and restarted resumes decoding here — everything
 * it judged before the gap stays judged once, and no edge is
 * fabricated across bytes it never saw settle.
 */
size_t resyncOffset(const uint8_t *data, size_t size, size_t offset);

size_t resyncOffset(const std::vector<uint8_t> &data, size_t offset);

/**
 * One ITC-CFG-level transition: consecutive TIP targets with the
 * conditional outcomes observed between them. PGE/PGD/FUP context
 * markers (syscalls, context switches) are transparent: they do not
 * break TIP adjacency, and TNT bits accumulate across them.
 */
struct TipTransition
{
    uint64_t from = 0;      ///< 0 for the first TIP in the window
    uint64_t to = 0;
    std::vector<uint8_t> tnt;   ///< outcomes between from and to
};

/** Folds a packet-layer decode into TIP transitions. */
std::vector<TipTransition>
extractTipTransitions(const FastDecodeResult &flow);

} // namespace flowguard::decode

#endif // FLOWGUARD_DECODE_FAST_DECODER_HH
