#include "decode/full_decoder.hh"

#include "support/logging.hh"
#include "telemetry/telemetry.hh"
#include "trace/ipt_packets.hh"

namespace flowguard::decode {

using cpu::BranchKind;
using isa::Instruction;
using isa::Opcode;
using trace::Packet;
using trace::PacketKind;
using trace::PacketParser;

namespace {

/** Flattened packet stream: one entry per TNT *bit* or TIP-class
 *  packet, in emission order. A Loss entry marks a trace gap (OVF or
 *  resync past undecodable bytes): events on its two sides must not
 *  be paired. */
struct Event
{
    enum class Kind : uint8_t { TntBit, Tip, Pge, Pgd, Fup, Loss };
    Kind kind;
    uint8_t bit = 0;
    bool suppressed = false;
    uint64_t ip = 0;
};

struct EventStream
{
    std::vector<Event> events;
    size_t cursor = 0;

    bool done() const { return cursor >= events.size(); }
    const Event &peek() const { return events[cursor]; }
    void consume() { ++cursor; }
};

} // namespace

FullDecodeResult
decodeInstructionFlow(const isa::Program &program, const uint8_t *data,
                      size_t size, cpu::CycleAccount *account,
                      telemetry::Telemetry *telemetry, uint64_t cr3)
{
    const uint64_t span_begin = telemetry ? telemetry->now() : 0;
    FullDecodeResult result;

    // --- flatten packets into an event stream ---------------------------
    EventStream stream;
    bool synced = false;        // saw a PSB
    bool started = false;       // found the first addressable IP
    {
        PacketParser parser(data, size);
        Packet pkt;
        while (true) {
            if (!parser.next(pkt)) {
                if (!parser.bad())
                    break;      // clean end of buffer
                // Malformed bytes: skip to the next validated PSB and
                // record the gap so the walk re-anchors there.
                const size_t bad_at =
                    static_cast<size_t>(parser.offset());
                const size_t psb =
                    trace::findNextPsb(data, size, bad_at + 1);
                if (psb == SIZE_MAX) {
                    result.bytesSkipped += size - bad_at;
                    break;
                }
                result.bytesSkipped += psb - bad_at;
                ++result.resyncs;
                parser.seek(psb);
                if (started)
                    stream.events.push_back(
                        {Event::Kind::Loss, 0, false, 0});
                continue;
            }
            switch (pkt.kind) {
              case PacketKind::Pad:
              case PacketKind::PsbEnd:
                break;
              case PacketKind::Psb:
                synced = true;
                break;
              case PacketKind::Ovf:
                ++result.overflows;
                if (started)
                    stream.events.push_back(
                        {Event::Kind::Loss, 0, false, 0});
                break;
              case PacketKind::Tnt:
                if (!started)
                    break;  // outcomes before a known IP are unusable
                for (int i = 0; i < pkt.tntCount; ++i)
                    stream.events.push_back(
                        {Event::Kind::TntBit,
                         static_cast<uint8_t>((pkt.tntBits >> i) & 1),
                         false, 0});
                break;
              case PacketKind::Tip:
              case PacketKind::TipPge:
              case PacketKind::TipPgd:
              case PacketKind::Fup: {
                if (!synced)
                    break;  // cannot trust IP compression before PSB
                Event::Kind kind =
                    pkt.kind == PacketKind::Tip ? Event::Kind::Tip
                    : pkt.kind == PacketKind::TipPge ? Event::Kind::Pge
                    : pkt.kind == PacketKind::TipPgd ? Event::Kind::Pgd
                    : Event::Kind::Fup;
                if (!started) {
                    // First addressable packet: a TIP or PGE target
                    // gives us the walk's start IP.
                    if ((kind == Event::Kind::Tip ||
                         kind == Event::Kind::Pge) &&
                        !pkt.ipSuppressed) {
                        result.startIp = pkt.ip;
                        started = true;
                    }
                    break;  // the sync packet itself is not replayed
                }
                stream.events.push_back(
                    {kind, 0, pkt.ipSuppressed, pkt.ip});
                break;
              }
            }
        }
    }

    if (!started) {
        result.status = FullDecodeResult::Status::NoSync;
        result.error = "no PSB-anchored TIP/PGE to start from";
        return result;
    }

    // --- instruction-by-instruction walk --------------------------------
    auto desync = [&](const std::string &why) {
        result.status = FullDecodeResult::Status::Desync;
        result.error = why;
    };

    // Reconstruction past the last packet is unverifiable; stop once
    // every event is consumed. The walk budget is a backstop against
    // pathological direct-branch cycles in malformed programs.
    constexpr uint64_t walk_budget = 50'000'000;
    uint64_t ip = result.startIp;
    bool walking = true;

    // Resumes the walk after a trace gap: events up to the next
    // packet naming an address were orphaned by the loss, and the
    // anchor itself (like the initial sync) is not replayed. Returns
    // false when the trace ends inside the gap.
    auto reanchor = [&]() -> bool {
        while (!stream.done()) {
            const Event &ev = stream.peek();
            if ((ev.kind == Event::Kind::Tip ||
                 ev.kind == Event::Kind::Pge) &&
                !ev.suppressed) {
                result.lossBranchIndices.push_back(
                    result.branches.size());
                ip = ev.ip;
                stream.consume();
                return true;
            }
            stream.consume();
        }
        result.lossBranchIndices.push_back(result.branches.size());
        return false;
    };

    while (walking && !stream.done()) {
        if (stream.peek().kind == Event::Kind::Loss) {
            // Nothing between here and the next addressable packet
            // can be verified; resume the walk on the far side.
            stream.consume();
            if (!reanchor())
                break;
            continue;
        }
        if (result.instructionsWalked >= walk_budget) {
            desync("instruction walk budget exceeded");
            break;
        }
        const Instruction *inst = program.fetch(ip);
        if (!inst) {
            result.status = FullDecodeResult::Status::BadFlow;
            result.error = "flow left mapped code";
            break;
        }
        ++result.instructionsWalked;
        const uint64_t next = ip + isa::instSize(inst->op);

        // Transparent handling of context-switch pauses: a PGD not
        // explained by a syscall instruction must be followed by a PGE
        // resuming exactly where we paused.
        while (!stream.done() &&
               stream.peek().kind == Event::Kind::Pgd &&
               inst->op != Opcode::Syscall) {
            stream.consume();
            if (stream.done()) {
                walking = false;
                break;
            }
            const Event &resume = stream.peek();
            if (resume.kind == Event::Kind::Loss)
                break;  // gap swallowed the resume; re-anchor above
            if (resume.kind != Event::Kind::Pge || resume.ip != ip) {
                desync("context resumed at an unexpected address");
                walking = false;
                break;
            }
            stream.consume();
        }
        if (!walking || result.status != FullDecodeResult::Status::Ok)
            break;
        if (!stream.done() &&
            stream.peek().kind == Event::Kind::Loss)
            continue;   // resolve the gap before consuming anything

        switch (inst->op) {
          case Opcode::Jcc: {
            if (stream.done()) {
                walking = false;
                break;
            }
            const Event &ev = stream.peek();
            if (ev.kind == Event::Kind::Loss)
                break;  // re-anchor at the top of the loop
            if (ev.kind != Event::Kind::TntBit) {
                desync("expected TNT outcome at conditional branch");
                walking = false;
                break;
            }
            const bool taken = ev.bit != 0;
            stream.consume();
            result.branches.push_back(
                {taken ? BranchKind::CondTaken
                       : BranchKind::CondNotTaken,
                 ip, taken ? inst->target : next});
            ip = taken ? inst->target : next;
            break;
          }

          case Opcode::Jmp:
            result.branches.push_back(
                {BranchKind::DirectJump, ip, inst->target});
            ip = inst->target;
            break;

          case Opcode::Call:
            result.branches.push_back(
                {BranchKind::DirectCall, ip, inst->target});
            ip = inst->target;
            break;

          case Opcode::JmpInd:
          case Opcode::CallInd:
          case Opcode::Ret: {
            if (stream.done()) {
                walking = false;
                break;
            }
            const Event &ev = stream.peek();
            if (ev.kind == Event::Kind::Loss)
                break;  // re-anchor at the top of the loop
            if (ev.kind != Event::Kind::Tip || ev.suppressed) {
                desync("expected TIP at indirect branch");
                walking = false;
                break;
            }
            stream.consume();
            BranchKind kind = inst->op == Opcode::JmpInd
                ? BranchKind::IndirectJump
                : inst->op == Opcode::CallInd
                    ? BranchKind::IndirectCall
                    : BranchKind::Return;
            result.branches.push_back({kind, ip, ev.ip});
            ip = ev.ip;
            break;
          }

          case Opcode::Syscall: {
            if (stream.done()) {
                walking = false;
                break;
            }
            // FUP at the syscall, PGD entering the kernel.
            if (stream.peek().kind == Event::Kind::Loss)
                break;  // re-anchor at the top of the loop
            if (stream.peek().kind != Event::Kind::Fup ||
                stream.peek().ip != ip) {
                desync("expected FUP at syscall");
                walking = false;
                break;
            }
            stream.consume();
            if (stream.done()) {
                desync("expected TIP.PGD after syscall FUP");
                walking = false;
                break;
            }
            if (stream.peek().kind == Event::Kind::Loss)
                break;  // gap swallowed the PGD; re-anchor above
            if (stream.peek().kind != Event::Kind::Pgd) {
                desync("expected TIP.PGD after syscall FUP");
                walking = false;
                break;
            }
            stream.consume();
            result.branches.push_back(
                {BranchKind::SyscallEntry, ip, 0});
            if (stream.done()) {
                walking = false;   // trace ends inside the kernel
                break;
            }
            const Event &resume = stream.peek();
            if (resume.kind == Event::Kind::Loss)
                break;  // SyscallExit unobserved; re-anchor above
            if (resume.kind != Event::Kind::Pge) {
                desync("expected TIP.PGE resuming from syscall");
                walking = false;
                break;
            }
            stream.consume();
            result.branches.push_back(
                {BranchKind::SyscallExit, ip, resume.ip});
            ip = resume.ip;
            break;
          }

          case Opcode::Halt:
            walking = false;
            break;

          default:
            ip = next;
            break;
        }
    }

    if (account) {
        uint64_t tips = 0;
        for (const auto &branch : result.branches) {
            tips += branch.kind == BranchKind::IndirectJump ||
                    branch.kind == BranchKind::IndirectCall ||
                    branch.kind == BranchKind::Return;
        }
        account->decode +=
            static_cast<double>(result.instructionsWalked) *
                cpu::cost::sw_full_decode_per_inst +
            static_cast<double>(result.branches.size()) *
                cpu::cost::sw_full_decode_per_branch +
            static_cast<double>(tips) *
                cpu::cost::sw_full_decode_per_tip;
    }
    if (telemetry) {
        telemetry->completeSpan(telemetry::SpanKind::FullDecode, cr3,
                                0, span_begin, telemetry->now(), 0,
                                result.instructionsWalked,
                                result.branches.size());
    }
    return result;
}

FullDecodeResult
decodeInstructionFlow(const isa::Program &program,
                      const std::vector<uint8_t> &data,
                      cpu::CycleAccount *account,
                      telemetry::Telemetry *telemetry, uint64_t cr3)
{
    return decodeInstructionFlow(program, data.data(), data.size(),
                                 account, telemetry, cr3);
}

} // namespace flowguard::decode
